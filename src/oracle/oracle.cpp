#include "oracle/oracle.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "controller/controller.h"
#include "controller/device.h"
#include "obs/obs.h"
#include "sim/interpreter.h"
#include "sim/state.h"

namespace flay::oracle {

namespace {

/// Deterministic per-phase probe seed. Plain seed+step would correlate
/// adjacent phases; a splitmix-style mix decorrelates them while staying
/// reproducible from (seed, step) alone.
uint64_t mixSeed(uint64_t seed, uint64_t step) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (step + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::string hexBytes(const std::vector<uint8_t>& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string s;
  s.reserve(bytes.size() * 2);
  for (uint8_t b : bytes) {
    s.push_back(kDigits[b >> 4]);
    s.push_back(kDigits[b & 0xf]);
  }
  return s;
}

std::string renderBool(bool b) { return b ? "true" : "false"; }

}  // namespace

std::string Divergence::describe() const {
  std::ostringstream os;
  os << "divergence on aspect '" << aspect << "' after " << updateStep
     << " update(s)";
  if (!lastUpdate.empty()) {
    os << " (last: " << lastUpdate
       << (afterPreservingUpdate ? ", judged semantics-preserving"
                                 : ", after full respecialization")
       << ")";
  }
  os << "\n  packet[" << packetIndex << "] port=" << ingressPort << " hex="
     << hexBytes(packetBytes) << "\n  original:    " << original
     << "\n  specialized: " << specialized;
  return os.str();
}

DifferentialOracle::DifferentialOracle(const p4::CheckedProgram& checked,
                                       OracleOptions options,
                                       std::string programPath)
    : checked_(checked),
      options_(std::move(options)),
      programPath_(std::move(programPath)),
      script_(net::fuzzUpdateSequence(checked, options_.updates,
                                      options_.seed)) {}

DifferentialOracle::SpecializedSide DifferentialOracle::respecialize(
    flay::FlayService& service) {
  obs::Registry& reg = obs::Registry::global();
  obs::ScopedTimer timer(reg.histogram("oracle.respecialize_us"),
                         "oracle.respecialize");
  reg.counter("oracle.respecializations").add(1);

  SpecializedSide side;
  flay::SpecializationResult result =
      flay::Specializer(service, options_.specializerOptions).specialize();
  side.checked = std::make_unique<p4::CheckedProgram>(
      flay::recheck(std::move(result.program)));
  migrate(service, side);
  return side;
}

void DifferentialOracle::migrate(flay::FlayService& service,
                                 SpecializedSide& side) {
  flay::MigrationTestHooks hooks;
  hooks.dropOneEntry =
      options_.sabotage == OracleOptions::Sabotage::kDropMigratedEntry;
  side.config = std::make_unique<runtime::DeviceConfig>(flay::migrateConfig(
      *side.checked, service.config(),
      hooks.dropOneEntry ? &hooks : nullptr));
}

std::optional<Divergence> DifferentialOracle::probe(
    const runtime::DeviceConfig& origConfig,
    const p4::CheckedProgram& specChecked,
    const runtime::DeviceConfig& specConfig, size_t updateStep,
    const sim::Packet* packetOverride, OracleReport* report) {
  obs::Registry& reg = obs::Registry::global();
  obs::ScopedTimer timer(reg.histogram("oracle.probe_us"), "oracle.probe");

  // Fresh extern state per phase and per side: probes must not leak
  // register/counter history across update steps, or a divergence would
  // depend on the probe history rather than the update script.
  sim::DataPlaneState origState(checked_);
  sim::DataPlaneState specState(specChecked);
  sim::Interpreter original(checked_, origConfig, origState);
  sim::Interpreter specialized(specChecked, specConfig, specState);

  net::PacketFuzzer fuzzer(checked_, origConfig,
                           mixSeed(options_.seed, updateStep));
  size_t count = packetOverride != nullptr ? 1 : options_.packets;

  auto diverge = [&](size_t packetIndex, const sim::Packet& packet,
                     std::string aspect, std::string orig, std::string spec) {
    Divergence d;
    d.updateStep = updateStep;
    d.packetIndex = packetIndex;
    d.packetBytes = packet.bytes;
    d.ingressPort = packet.ingressPort;
    d.aspect = std::move(aspect);
    d.original = std::move(orig);
    d.specialized = std::move(spec);
    reg.counter("oracle.divergences").add(1);
    return d;
  };

  for (size_t i = 0; i < count; ++i) {
    sim::Packet packet =
        packetOverride != nullptr ? *packetOverride : fuzzer.randomPacket();
    sim::ExecResult a = original.process(packet);
    sim::ExecResult b = specialized.process(packet);
    if (report != nullptr) ++report->packetsCompared;
    reg.counter("oracle.probe_packets").add(1);

    if (a.parserAccepted != b.parserAccepted) {
      return diverge(i, packet, "parserAccepted", renderBool(a.parserAccepted),
                     renderBool(b.parserAccepted));
    }
    if (a.dropped != b.dropped) {
      return diverge(i, packet, "dropped", renderBool(a.dropped),
                     renderBool(b.dropped));
    }
    if (a.dropped) continue;  // both dropped: no observable output
    if (a.egressPort != b.egressPort) {
      return diverge(i, packet, "egressPort", std::to_string(a.egressPort),
                     std::to_string(b.egressPort));
    }
    if (a.outputBytes != b.outputBytes) {
      return diverge(i, packet, "outputBytes", hexBytes(a.outputBytes),
                     hexBytes(b.outputBytes));
    }
    if (options_.compareFields) {
      // Compare the intersection of the two field stores: the specializer
      // may legitimately drop never-read locations, but any location both
      // programs still carry must agree.
      for (const auto& [name, value] : a.fields) {
        auto it = b.fields.find(name);
        if (it == b.fields.end()) continue;
        if (!(value == it->second)) {
          return diverge(i, packet, "field:" + name, value.toHexString(),
                         it->second.toHexString());
        }
      }
    }
  }

  if (options_.compareExterns) {
    // Sparse snapshots: cells the specialized program no longer declares are
    // only a divergence when the original actually touched them.
    std::map<std::string, std::string> a = origState.externSnapshot();
    std::map<std::string, std::string> b = specState.externSnapshot();
    for (const auto& [cell, value] : a) {
      auto it = b.find(cell);
      std::string spec = it == b.end() ? "<default>" : it->second;
      if (spec != value) {
        sim::Packet none;
        return diverge(count, none, "extern:" + cell, value, spec);
      }
    }
    for (const auto& [cell, value] : b) {
      if (a.count(cell) == 0) {
        sim::Packet none;
        return diverge(count, none, "extern:" + cell, "<default>", value);
      }
    }
  }
  return std::nullopt;
}

std::optional<Divergence> DifferentialOracle::replay(
    const std::vector<size_t>& subset, const sim::Packet* packetOverride,
    OracleReport* report) {
  obs::Registry& reg = obs::Registry::global();
  reg.counter("oracle.replays").add(1);
  if (options_.faultPlan.has_value()) {
    return replayWithFaults(subset, packetOverride, report);
  }

  flay::FlayService service(checked_, options_.flayOptions);
  SpecializedSide side = respecialize(service);
  if (report != nullptr) ++report->respecializations;

  // Step 0: the initial specialization of the empty starting config.
  if (auto d = probe(service.config(), *side.checked, *side.config, 0,
                     packetOverride, report)) {
    d->subsetPos = SIZE_MAX;
    return d;
  }

  size_t applied = 0;
  for (size_t pos = 0; pos < subset.size(); ++pos) {
    const runtime::Update& update = script_.at(subset[pos]);
    flay::UpdateVerdict verdict;
    try {
      verdict = service.applyUpdate(update);
    } catch (const std::invalid_argument&) {
      // Subset replays may orphan deletes/modifies whose insert was removed
      // by the shrinker; treat them as rejected-and-skipped so every subset
      // replays deterministically.
      if (report != nullptr) ++report->updatesRejected;
      reg.counter("oracle.updates_rejected").add(1);
      continue;
    }
    ++applied;
    if (report != nullptr) ++report->updatesApplied;
    reg.counter("oracle.updates_applied").add(1);

    // The metamorphic judgment: a semantics-preserving verdict promises the
    // deployed (specialized) program is still packet-equivalent, so we keep
    // it and only migrate the config — exactly the work the paper's fast
    // path skips. A recompilation verdict instead forces the slow path.
    if (verdict.needsRecompilation) {
      side = respecialize(service);
      if (report != nullptr) ++report->respecializations;
    } else {
      migrate(service, side);
      if (report != nullptr) ++report->preservingChecks;
      reg.counter("oracle.preserving_checks").add(1);
    }

    if (auto d = probe(service.config(), *side.checked, *side.config, applied,
                       packetOverride, report)) {
      d->afterPreservingUpdate = !verdict.needsRecompilation;
      d->lastUpdate = update.toString();
      d->subsetPos = pos;
      return d;
    }
  }
  return std::nullopt;
}

std::optional<Divergence> DifferentialOracle::replayWithFaults(
    const std::vector<size_t>& subset, const sim::Packet* packetOverride,
    OracleReport* report) {
  obs::Registry& reg = obs::Registry::global();
  reg.counter("oracle.fault_replays").add(1);

  // Fresh controller + device per replay: the fault plan's RNG restarts, so
  // shrunk subsets replay the exact same fault schedule.
  tofino::CompilerOptions compilerOptions;
  compilerOptions.searchIterations = options_.faultCompileIterations;
  controller::SimulatedDevice device(*options_.faultPlan, {}, compilerOptions);
  controller::ControllerOptions copts;
  copts.flay = options_.flayOptions;
  copts.specializer = options_.specializerOptions;
  copts.seed = options_.seed;
  controller::FaultTolerantController ctl(checked_, &device, copts);

  // The device side is whatever the controller actually got installed —
  // pinned program + device-visible config — not what a fault-free run
  // would have. migrateConfig is pure, so recomputing it per probe step
  // tracks every forwarded update.
  auto probeDevice = [&](size_t step) -> std::optional<Divergence> {
    runtime::DeviceConfig migrated =
        flay::migrateConfig(ctl.deviceProgram(), ctl.deviceConfig());
    if (report != nullptr && ctl.degraded()) ++report->degradedSteps;
    return probe(ctl.deviceConfig(), ctl.deviceProgram(), migrated, step,
                 packetOverride, report);
  };

  if (auto d = probeDevice(0)) {
    d->subsetPos = SIZE_MAX;
    return d;
  }

  size_t applied = 0;
  for (size_t pos = 0; pos < subset.size(); ++pos) {
    const runtime::Update& update = script_.at(subset[pos]);
    controller::ApplyResult result;
    try {
      result = ctl.apply(update);
    } catch (const std::invalid_argument&) {
      if (report != nullptr) ++report->updatesRejected;
      reg.counter("oracle.updates_rejected").add(1);
      continue;
    }
    ++applied;
    if (report != nullptr) {
      ++report->updatesApplied;
      report->faultRetries += result.retries;
      if (!result.verdict.needsRecompilation) ++report->preservingChecks;
    }
    reg.counter("oracle.updates_applied").add(1);

    if (auto d = probeDevice(applied)) {
      d->afterPreservingUpdate = !result.verdict.needsRecompilation;
      d->lastUpdate = update.toString();
      d->subsetPos = pos;
      return d;
    }
  }

  // End of script: pull the controller out of degradation if the fault
  // window has passed, and check the recovered device once more.
  for (int attempt = 0; ctl.degraded() && attempt < 3; ++attempt) {
    if (ctl.tryRecover()) break;
  }
  return probeDevice(applied + 1);
}

OracleReport DifferentialOracle::run() {
  obs::Registry& reg = obs::Registry::global();
  obs::ScopedTimer timer(reg.histogram("oracle.run_us"), "oracle.run");
  reg.counter("oracle.runs").add(1);

  std::vector<size_t> subset;
  if (options_.replayUpdates.has_value()) {
    subset = *options_.replayUpdates;
    subset.erase(std::remove_if(subset.begin(), subset.end(),
                                [this](size_t i) { return i >= script_.size(); }),
                 subset.end());
  } else {
    subset.resize(script_.size());
    for (size_t i = 0; i < subset.size(); ++i) subset[i] = i;
  }

  sim::Packet overridePacket;
  const sim::Packet* packetOverride = nullptr;
  if (!options_.probePacketOverride.empty()) {
    overridePacket.bytes = options_.probePacketOverride;
    overridePacket.ingressPort = options_.probeIngressPort;
    packetOverride = &overridePacket;
  }

  OracleReport report;
  report.divergence = replay(subset, packetOverride, &report);
  report.equivalent = !report.divergence.has_value();

  if (!report.equivalent) {
    if (options_.shrink) {
      shrink(report);
    } else {
      // Unshrunk repro: the subset up to and including the diverging update.
      size_t pos = report.divergence->subsetPos;
      if (pos == SIZE_MAX) {
        report.shrunkUpdates.clear();
      } else {
        report.shrunkUpdates.assign(subset.begin(),
                                    subset.begin() + pos + 1);
      }
    }
    report.reproCommand = buildReproCommand(report);
  }
  return report;
}

// ---------------------------------------------------------------------------
// Shrinker: ddmin over the update subset, then byte-level packet shrinking.
// ---------------------------------------------------------------------------

void DifferentialOracle::shrink(OracleReport& report) {
  obs::Registry& reg = obs::Registry::global();
  obs::ScopedTimer timer(reg.histogram("oracle.shrink_us"), "oracle.shrink");

  // Budget on full replays: each costs a respecialization per recompiling
  // update, so cap the search rather than demanding a global minimum.
  size_t budget = 300;
  auto diverges = [&](const std::vector<size_t>& cand,
                      const sim::Packet* pkt) -> std::optional<Divergence> {
    if (budget == 0) return std::nullopt;
    --budget;
    reg.counter("oracle.shrink_replays").add(1);
    OracleReport scratch;
    return replay(cand, pkt, &scratch);
  };

  // Start from the replayed subset truncated at the diverging update: later
  // updates cannot matter.
  std::vector<size_t> subset;
  if (options_.replayUpdates.has_value()) {
    subset = *options_.replayUpdates;
    subset.erase(std::remove_if(subset.begin(), subset.end(),
                                [this](size_t i) { return i >= script_.size(); }),
                 subset.end());
  } else {
    subset.resize(script_.size());
    for (size_t i = 0; i < subset.size(); ++i) subset[i] = i;
  }
  size_t pos = report.divergence->subsetPos;
  if (pos == SIZE_MAX) {
    subset.clear();
  } else {
    subset.resize(pos + 1);
  }

  // ddmin: try removing chunks at decreasing granularity until 1-minimal.
  size_t chunk = subset.size() / 2;
  while (chunk >= 1 && !subset.empty() && budget > 0) {
    bool removedAny = false;
    for (size_t start = 0; start < subset.size() && budget > 0;) {
      std::vector<size_t> candidate;
      candidate.reserve(subset.size());
      size_t end = std::min(start + chunk, subset.size());
      candidate.insert(candidate.end(), subset.begin(),
                       subset.begin() + start);
      candidate.insert(candidate.end(), subset.begin() + end, subset.end());
      if (diverges(candidate, nullptr)) {
        subset = std::move(candidate);
        removedAny = true;
        // Restart scan at the same offset: the element there is new.
      } else {
        start = end;
      }
    }
    if (chunk == 1 && !removedAny) break;
    chunk = std::max<size_t>(1, chunk / 2);
  }
  report.shrunkUpdates = subset;

  // Re-run the minimal subset to pick up the (possibly different) diverging
  // packet for this exact script, then minimize the packet itself while
  // holding the update subset fixed.
  std::optional<Divergence> d = diverges(subset, nullptr);
  if (!d) {
    // Budget exhausted or flaky-only-under-shrink; keep the original
    // divergence and skip packet shrinking.
    return;
  }
  report.divergence = d;
  if (d->packetBytes.empty()) return;  // extern-only divergence, no packet

  sim::Packet packet;
  packet.bytes = d->packetBytes;
  packet.ingressPort = d->ingressPort;
  if (!diverges(subset, &packet)) return;  // workload-order dependent; keep

  // Phase 1: drop trailing bytes (payload rarely matters).
  while (!packet.bytes.empty() && budget > 0) {
    sim::Packet candidate = packet;
    candidate.bytes.pop_back();
    if (diverges(subset, &candidate)) {
      packet = std::move(candidate);
    } else {
      break;
    }
  }
  // Phase 2: zero out individual bytes to expose the load-bearing fields.
  for (size_t i = 0; i < packet.bytes.size() && budget > 0; ++i) {
    if (packet.bytes[i] == 0) continue;
    sim::Packet candidate = packet;
    candidate.bytes[i] = 0;
    if (diverges(subset, &candidate)) packet = std::move(candidate);
  }

  report.shrunkPacketBytes = packet.bytes;
  report.shrunkIngressPort = packet.ingressPort;
}

std::string DifferentialOracle::buildReproCommand(
    const OracleReport& report) const {
  std::ostringstream os;
  os << "flayc difftest " << programPath_ << " --updates " << options_.updates
     << " --packets " << options_.packets << " --seed " << options_.seed;
  if (options_.sabotage == OracleOptions::Sabotage::kDropMigratedEntry) {
    os << " --sabotage drop-entry";
  }
  if (options_.faultPlan.has_value()) {
    os << " --fault-plan " << options_.faultPlan->toString();
  }
  os << " --replay-updates ";
  if (report.shrunkUpdates.empty()) {
    os << "none";
  } else {
    for (size_t i = 0; i < report.shrunkUpdates.size(); ++i) {
      if (i > 0) os << ",";
      os << report.shrunkUpdates[i];
    }
  }
  if (!report.shrunkPacketBytes.empty()) {
    os << " --packet-hex " << hexBytes(report.shrunkPacketBytes)
       << " --ingress-port " << report.shrunkIngressPort;
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Incremental-vs-scratch consistency
// ---------------------------------------------------------------------------

ConsistencyReport checkIncrementalConsistency(flay::FlayService& service) {
  obs::Registry& reg = obs::Registry::global();
  obs::ScopedTimer timer(reg.histogram("oracle.consistency_us"),
                         "oracle.consistency");
  reg.counter("oracle.consistency_checks").add(1);

  const auto& points = service.analysis().annotations.points();
  std::vector<expr::ExprRef> incremental;
  incremental.reserve(points.size());
  for (const auto& p : points) incremental.push_back(p.specialized);

  // respecializeAll() recomputes every point from the current config from
  // scratch; the arena hash-conses, so an unchanged expression keeps its id
  // and the comparison is exact structural equality.
  service.respecializeAll();

  ConsistencyReport report;
  const auto& fresh = service.analysis().annotations.points();
  for (size_t i = 0; i < fresh.size() && i < incremental.size(); ++i) {
    if (!(fresh[i].specialized == incremental[i])) {
      report.consistent = false;
      report.mismatchedPoints.push_back(fresh[i].id);
      reg.counter("oracle.consistency_mismatches").add(1);
    }
  }
  return report;
}

}  // namespace flay::oracle
