#ifndef FLAY_ORACLE_ORACLE_H
#define FLAY_ORACLE_ORACLE_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "controller/fault_plan.h"
#include "flay/engine.h"
#include "flay/specializer.h"
#include "net/fuzzer.h"
#include "sim/packet.h"

namespace flay::oracle {

/// Knobs of one differential-oracle run. The (seed, updates, packets) triple
/// fully determines the fuzzed update script and every probe workload, so a
/// run — and any shrunk subset of it — replays exactly from a command line.
struct OracleOptions {
  size_t updates = 100;  // length of the fuzzed update script
  size_t packets = 32;   // probe packets per equivalence check
  uint64_t seed = 1;
  bool shrink = true;    // minimize update script + packet on divergence
  bool compareFields = true;   // compare the full post-pipeline field store
  bool compareExterns = true;  // compare register/counter/meter state

  /// Fault injection: forward to migrateConfig's test hooks so tests and CI
  /// can prove the oracle catches a specializer that drops an entry.
  enum class Sabotage { kNone, kDropMigratedEntry };
  Sabotage sabotage = Sabotage::kNone;

  /// Replay only these indices of the generated script (nullopt = the whole
  /// script; an empty list = no updates, probing the initial specialization
  /// only). Produced by the shrinker; settable from `flayc difftest
  /// --replay-updates`.
  std::optional<std::vector<size_t>> replayUpdates;
  /// When non-empty, every probe consists of exactly this packet instead of
  /// the fuzzed workload (replaying a shrunk counterexample).
  std::vector<uint8_t> probePacketOverride;
  uint32_t probeIngressPort = 0;

  /// When set, the replay drives a FaultTolerantController backed by a
  /// SimulatedDevice injecting this plan's faults (retries, degradation,
  /// recovery) instead of a bare FlayService. Probes then assert the
  /// degradation invariant: the device's (program, config) pair stays
  /// packet-equivalent to the original program under the device-visible
  /// config, across every retry, pin, and recovery the plan provokes.
  std::optional<controller::FaultPlan> faultPlan;
  /// Placement-search budget for the fault-mode device compiler (kept small
  /// because the oracle compiles on every recompile verdict).
  uint32_t faultCompileIterations = 8;

  flay::FlayOptions flayOptions;
  flay::SpecializerOptions specializerOptions;
};

/// First observed behavioral difference between the original program and its
/// specialization.
struct Divergence {
  /// Number of script updates applied when the divergence fired (0 = the
  /// initial specialization of the starting config already diverges).
  size_t updateStep = 0;
  /// True when the last applied update was judged semantics-preserving —
  /// i.e. the incremental verdict itself is implicated, not just the
  /// specializer.
  bool afterPreservingUpdate = false;
  /// Last update applied before the divergence (empty at step 0).
  std::string lastUpdate;
  size_t packetIndex = 0;
  std::vector<uint8_t> packetBytes;
  uint32_t ingressPort = 0;
  /// What differed: "parserAccepted", "dropped", "egressPort",
  /// "outputBytes", "field:<canonical>", or "extern:<cell>".
  std::string aspect;
  std::string original;     // rendered value on the original program
  std::string specialized;  // rendered value on the specialized program
  /// Position within the replayed subset of the last processed update
  /// (SIZE_MAX when the initial specialization already diverges). The
  /// shrinker truncates the script here before minimizing.
  size_t subsetPos = SIZE_MAX;

  std::string describe() const;
};

struct OracleReport {
  bool equivalent = true;
  size_t updatesApplied = 0;
  size_t updatesRejected = 0;
  size_t packetsCompared = 0;
  size_t preservingChecks = 0;   // probes after semantics-preserving verdicts
  size_t respecializations = 0;  // forced full respecializations
  /// Fault mode only: probe steps taken while the controller was degraded
  /// (device pinned to the last good program), and install/compile retries
  /// the fault plan provoked.
  size_t degradedSteps = 0;
  size_t faultRetries = 0;
  std::optional<Divergence> divergence;

  // Filled by the shrinker when a divergence was found and shrinking is on.
  std::vector<size_t> shrunkUpdates;       // minimal script indices
  std::vector<uint8_t> shrunkPacketBytes;  // minimized packet ([] = none)
  uint32_t shrunkIngressPort = 0;
  /// Replayable `flayc difftest ...` command reproducing the shrunk case.
  std::string reproCommand;
};

/// The specialize-then-simulate differential oracle (tentpole of the test
/// subsystem): replays a fuzzed control-plane update script through a
/// FlayService and, after every update, checks that the interpreter's
/// behavior on the original program matches the specialized one on a probe
/// workload. Updates judged semantics-preserving keep the current
/// specialized program (only the config is migrated — the paper's "forward
/// straight to the device" path); updates judged semantics-changing force a
/// full respecialization first. Any mismatch is a bug in the specializer,
/// the digest-based verdict, or the interpreter — exactly the silent-failure
/// class the paper's value proposition depends on.
class DifferentialOracle {
 public:
  /// `checked` must outlive the oracle. `programPath` is only used to render
  /// the replayable repro command.
  DifferentialOracle(const p4::CheckedProgram& checked, OracleOptions options,
                     std::string programPath = "<prog.p4l>");

  /// Runs the full metamorphic replay; shrinks on divergence when enabled.
  OracleReport run();

  /// The fuzzed update script the run replays (generated deterministically
  /// from the seed at construction).
  const std::vector<runtime::Update>& script() const { return script_; }

 private:
  struct SpecializedSide {
    std::unique_ptr<p4::CheckedProgram> checked;
    std::unique_ptr<runtime::DeviceConfig> config;
  };

  /// Replays `subset` (indices into script_) from a fresh service; returns
  /// the first divergence, or nullopt when equivalent. `packetOverride`
  /// replaces every probe workload with one fixed packet. Dispatches to
  /// replayWithFaults() when options_.faultPlan is set.
  std::optional<Divergence> replay(const std::vector<size_t>& subset,
                                   const sim::Packet* packetOverride,
                                   OracleReport* report);
  /// Fault-mode replay: same script, but through a FaultTolerantController
  /// with an injected-fault device; probes compare the original program
  /// under the device-visible config against the device's pinned program.
  std::optional<Divergence> replayWithFaults(const std::vector<size_t>& subset,
                                             const sim::Packet* packetOverride,
                                             OracleReport* report);

  SpecializedSide respecialize(flay::FlayService& service);
  void migrate(flay::FlayService& service, SpecializedSide& side);
  /// Compares the original program under `origConfig` against `specChecked`
  /// under `specConfig` on a fuzzed (or overridden) probe workload.
  std::optional<Divergence> probe(const runtime::DeviceConfig& origConfig,
                                  const p4::CheckedProgram& specChecked,
                                  const runtime::DeviceConfig& specConfig,
                                  size_t updateStep,
                                  const sim::Packet* packetOverride,
                                  OracleReport* report);

  void shrink(OracleReport& report);
  std::string buildReproCommand(const OracleReport& report) const;

  const p4::CheckedProgram& checked_;
  OracleOptions options_;
  std::string programPath_;
  std::vector<runtime::Update> script_;
};

/// Incremental-vs-scratch consistency check: snapshots every program point's
/// specialized expression, forces a from-scratch respecialization of the
/// same config, and reports points whose expression differs. A mismatch
/// means some incremental update verdict left stale analysis state — the
/// cheap engine-level cousin of the full differential oracle, used by
/// `flayc fuzz` to turn its stats run into a pass/fail check.
struct ConsistencyReport {
  bool consistent = true;
  std::vector<uint32_t> mismatchedPoints;
};
ConsistencyReport checkIncrementalConsistency(flay::FlayService& service);

}  // namespace flay::oracle

#endif  // FLAY_ORACLE_ORACLE_H
