#include "classifier/classifier.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <unordered_map>

namespace flay::classifier {

namespace {

constexpr uint64_t kTcamCellCost = 6;  // relative to one SRAM bit
constexpr uint64_t kSramCellCost = 1;

void sortByPriority(std::vector<Rule>& rules) {
  std::stable_sort(rules.begin(), rules.end(),
                   [](const Rule& a, const Rule& b) {
                     return a.priority > b.priority;
                   });
}

// ---------------------------------------------------------------------------
// TCAM
// ---------------------------------------------------------------------------

class TcamClassifier final : public Classifier {
 public:
  TcamClassifier(std::vector<Rule> rules, uint32_t width)
      : rules_(std::move(rules)), width_(width) {
    sortByPriority(rules_);
  }

  std::optional<uint32_t> classify(const BitVec& key) const override {
    for (const Rule& r : rules_) {
      if (key.bitAnd(r.mask) == r.value.bitAnd(r.mask)) return r.actionId;
    }
    return std::nullopt;
  }

  uint64_t memoryBits() const override {
    // Each TCAM cell stores value+care: 2 bits of storage per key bit,
    // plus the action id (SRAM side, counted in costUnits only).
    return static_cast<uint64_t>(rules_.size()) * width_ * 2;
  }

  uint64_t costUnits() const override {
    uint64_t tcamBits = static_cast<uint64_t>(rules_.size()) * width_;
    uint64_t actionBits = static_cast<uint64_t>(rules_.size()) * 32;
    return tcamBits * kTcamCellCost + actionBits * kSramCellCost;
  }

  std::string name() const override { return "tcam"; }
  size_t ruleCount() const override { return rules_.size(); }

 private:
  std::vector<Rule> rules_;
  uint32_t width_;
};

// ---------------------------------------------------------------------------
// STCAM: per-distinct-mask exact groups searched in priority order
// ---------------------------------------------------------------------------

class StcamClassifier final : public Classifier {
 public:
  StcamClassifier(std::vector<Rule> rules, uint32_t width, uint32_t maxMasks)
      : width_(width) {
    for (const Rule& r : rules) {
      groups_[maskKey(r.mask)].mask = r.mask;
    }
    if (groups_.size() > maxMasks) {
      throw std::invalid_argument("rule set needs " +
                                  std::to_string(groups_.size()) +
                                  " masks, STCAM supports " +
                                  std::to_string(maxMasks));
    }
    for (Rule& r : rules) {
      Group& g = groups_[maskKey(r.mask)];
      g.entries.emplace(r.value.bitAnd(r.mask).toHexString(), r);
    }
    ruleCount_ = rules.size();
  }

  std::optional<uint32_t> classify(const BitVec& key) const override {
    const Rule* best = nullptr;
    for (const auto& [mk, g] : groups_) {
      auto it = g.entries.find(key.bitAnd(g.mask).toHexString());
      if (it == g.entries.end()) continue;
      if (best == nullptr || it->second.priority > best->priority) {
        best = &it->second;
      }
    }
    if (best == nullptr) return std::nullopt;
    return best->actionId;
  }

  uint64_t memoryBits() const override {
    // One stored mask per group plus exact entries in SRAM (value + action
    // + hash overhead at 75% load).
    uint64_t bits = groups_.size() * width_;
    uint64_t perEntry = (width_ + 32) * 4 / 3;
    return bits + ruleCount_ * perEntry;
  }

  uint64_t costUnits() const override { return memoryBits() * kSramCellCost; }
  std::string name() const override { return "stcam"; }
  size_t ruleCount() const override { return ruleCount_; }

 private:
  static std::string maskKey(const BitVec& mask) { return mask.toHexString(); }
  struct Group {
    BitVec mask;
    std::unordered_map<std::string, Rule> entries;  // masked value -> rule
  };
  std::map<std::string, Group> groups_;
  uint32_t width_;
  size_t ruleCount_ = 0;
};

// ---------------------------------------------------------------------------
// Exact hash
// ---------------------------------------------------------------------------

class ExactHashClassifier final : public Classifier {
 public:
  ExactHashClassifier(std::vector<Rule> rules, uint32_t width)
      : width_(width) {
    for (Rule& r : rules) {
      if (!r.mask.isAllOnes()) {
        throw std::invalid_argument("exact classifier requires full masks");
      }
      table_.emplace(r.value.toHexString(), r.actionId);
    }
  }

  std::optional<uint32_t> classify(const BitVec& key) const override {
    auto it = table_.find(key.toHexString());
    if (it == table_.end()) return std::nullopt;
    return it->second;
  }

  uint64_t memoryBits() const override {
    uint64_t perEntry = (width_ + 32) * 4 / 3;  // 75% load factor
    return table_.size() * perEntry;
  }
  uint64_t costUnits() const override { return memoryBits() * kSramCellCost; }
  std::string name() const override { return "exact-hash"; }
  size_t ruleCount() const override { return table_.size(); }

 private:
  std::unordered_map<std::string, uint32_t> table_;
  uint32_t width_;
};

// ---------------------------------------------------------------------------
// LPM trie
// ---------------------------------------------------------------------------

/// Path-compressed (Patricia-style) binary trie: chains of single-child
/// nodes collapse into a skip segment per edge, so the node count is at
/// most ~2x the rule count regardless of prefix lengths.
class LpmTrieClassifier final : public Classifier {
 public:
  LpmTrieClassifier(std::vector<Rule> rules, uint32_t width) : width_(width) {
    nodes_.push_back({});
    for (const Rule& r : rules) {
      if (!r.mask.isPrefixMask()) {
        throw std::invalid_argument("LPM trie requires prefix masks");
      }
      insert(r);
    }
    ruleCount_ = rules.size();
  }

  std::optional<uint32_t> classify(const BitVec& key) const override {
    std::optional<uint32_t> best;
    size_t node = 0;
    uint32_t depth = 0;  // bits of key consumed so far (from MSB)
    for (;;) {
      const Node& n = nodes_[node];
      if (n.hasAction) best = n.actionId;
      if (depth >= width_) break;
      bool bit = key.bit(width_ - 1 - depth);
      size_t next = bit ? n.one : n.zero;
      if (next == 0) break;
      const Node& child = nodes_[next];
      // The edge consumes 1 branch bit + the child's skip segment, all of
      // which must match the key.
      uint32_t consumed = 1 + child.skipLen;
      if (depth + consumed > width_) break;
      bool match = true;
      for (uint32_t i = 0; i < child.skipLen; ++i) {
        uint32_t keyBit = width_ - 1 - (depth + 1 + i);
        if (key.bit(keyBit) != child.skip.bit(child.skipLen - 1 - i)) {
          match = false;
          break;
        }
      }
      if (!match) break;
      depth += consumed;
      node = next;
    }
    return best;
  }

  uint64_t memoryBits() const override {
    // Per node: two child pointers (24b), action id + flag (33b), skip
    // length (6b) + the stored skip bits.
    uint64_t bits = 0;
    for (const Node& n : nodes_) bits += 2 * 24 + 33 + 6 + n.skipLen;
    return bits;
  }
  uint64_t costUnits() const override { return memoryBits() * kSramCellCost; }
  std::string name() const override { return "lpm-trie"; }
  size_t ruleCount() const override { return ruleCount_; }

 private:
  struct Node {
    size_t zero = 0, one = 0;  // 0 = absent (node 0 is the root)
    uint32_t skipLen = 0;
    BitVec skip;  // path-compressed bits below the branch bit (MSB first)
    bool hasAction = false;
    uint32_t actionId = 0;
  };

  /// Bits [offset, offset+len) of the rule's prefix, MSB order.
  BitVec prefixSlice(const Rule& r, uint32_t offset, uint32_t len) const {
    if (len == 0) return BitVec::zero(0);
    uint32_t hi = width_ - 1 - offset;
    uint32_t lo = hi + 1 - len;
    return r.value.slice(hi, lo);
  }

  void insert(const Rule& r) {
    uint32_t prefixLen = r.mask.leadingOnes();
    size_t node = 0;
    uint32_t depth = 0;
    while (depth < prefixLen) {
      bool bit = r.value.bit(width_ - 1 - depth);
      size_t childIdx = bit ? nodes_[node].one : nodes_[node].zero;
      if (childIdx == 0) {
        // New leaf edge: branch bit + remaining prefix as skip segment.
        Node leaf;
        leaf.skipLen = prefixLen - depth - 1;
        leaf.skip = prefixSlice(r, depth + 1, leaf.skipLen);
        leaf.hasAction = true;
        leaf.actionId = r.actionId;
        nodes_.push_back(std::move(leaf));
        size_t fresh = nodes_.size() - 1;
        if (bit) {
          nodes_[node].one = fresh;
        } else {
          nodes_[node].zero = fresh;
        }
        return;
      }
      // Compare the child's skip segment with the rule's continuation.
      uint32_t childSkip = nodes_[childIdx].skipLen;
      uint32_t ruleRemaining = prefixLen - depth - 1;
      uint32_t common = 0;
      uint32_t comparable = std::min(childSkip, ruleRemaining);
      for (; common < comparable; ++common) {
        bool ruleBit = r.value.bit(width_ - 1 - (depth + 1 + common));
        bool skipBit = nodes_[childIdx].skip.bit(childSkip - 1 - common);
        if (ruleBit != skipBit) break;
      }
      if (common == childSkip) {
        // Full skip matched: descend.
        depth += 1 + childSkip;
        node = childIdx;
        if (depth == prefixLen) {
          nodes_[node].hasAction = true;
          nodes_[node].actionId = r.actionId;
          return;
        }
        continue;
      }
      // Split the child's edge at `common`.
      Node upper;
      upper.skipLen = common;
      upper.skip = common == 0 ? BitVec::zero(0)
                               : nodes_[childIdx].skip.slice(
                                     childSkip - 1, childSkip - common);
      // The old child keeps its tail below its (former) bit at position
      // `common` of the skip.
      bool oldBit = nodes_[childIdx].skip.bit(childSkip - 1 - common);
      Node oldTail = std::move(nodes_[childIdx]);
      uint32_t tailLen = childSkip - common - 1;
      oldTail.skip = tailLen == 0 ? BitVec::zero(0)
                                  : oldTail.skip.slice(tailLen - 1, 0);
      oldTail.skipLen = tailLen;
      nodes_[childIdx] = std::move(upper);
      nodes_.push_back(std::move(oldTail));
      size_t oldTailIdx = nodes_.size() - 1;
      if (oldBit) {
        nodes_[childIdx].one = oldTailIdx;
      } else {
        nodes_[childIdx].zero = oldTailIdx;
      }
      // Continue inserting below the split point.
      depth += 1 + common;
      node = childIdx;
      if (depth == prefixLen) {
        nodes_[node].hasAction = true;
        nodes_[node].actionId = r.actionId;
        return;
      }
    }
    nodes_[node].hasAction = true;
    nodes_[node].actionId = r.actionId;
  }

  std::vector<Node> nodes_;
  uint32_t width_;
  size_t ruleCount_ = 0;
};

}  // namespace

std::unique_ptr<Classifier> makeTcam(std::vector<Rule> rules, uint32_t width) {
  return std::make_unique<TcamClassifier>(std::move(rules), width);
}

std::unique_ptr<Classifier> makeStcam(std::vector<Rule> rules, uint32_t width,
                                      uint32_t maxMasks) {
  return std::make_unique<StcamClassifier>(std::move(rules), width, maxMasks);
}

std::unique_ptr<Classifier> makeExactHash(std::vector<Rule> rules,
                                          uint32_t width) {
  return std::make_unique<ExactHashClassifier>(std::move(rules), width);
}

std::unique_ptr<Classifier> makeLpmTrie(std::vector<Rule> rules,
                                        uint32_t width) {
  return std::make_unique<LpmTrieClassifier>(std::move(rules), width);
}

RuleSetProfile profileRules(const std::vector<Rule>& rules) {
  RuleSetProfile p;
  p.rules = rules.size();
  std::vector<std::string> masks;
  for (const Rule& r : rules) {
    p.allExact &= r.mask.isAllOnes();
    p.allPrefix &= r.mask.isPrefixMask();
    std::string mk = r.mask.toHexString();
    if (std::find(masks.begin(), masks.end(), mk) == masks.end()) {
      masks.push_back(mk);
    }
  }
  p.distinctMasks = masks.size();
  return p;
}

std::unique_ptr<Classifier> chooseClassifier(std::vector<Rule> rules,
                                             uint32_t width,
                                             uint32_t stcamMaxMasks) {
  // Build every structure the rule shape admits and keep the cheapest.
  // SRAM structures win ties and small deficits (factor below) because
  // TCAM additionally burns ~10x the power per searched bit.
  constexpr double kSramBias = 1.2;
  RuleSetProfile p = profileRules(rules);
  std::unique_ptr<Classifier> best = makeTcam(rules, width);
  auto consider = [&](std::unique_ptr<Classifier> candidate) {
    // An SRAM candidate displaces a TCAM incumbent even at a small cost
    // deficit (power bias); between SRAM structures, strictly cheaper wins.
    uint64_t threshold =
        best->name() == "tcam"
            ? static_cast<uint64_t>(
                  static_cast<double>(best->costUnits()) * kSramBias)
            : best->costUnits();
    if (candidate->costUnits() < threshold) best = std::move(candidate);
  };
  if (p.allExact) consider(makeExactHash(rules, width));
  if (p.allPrefix) consider(makeLpmTrie(rules, width));
  if (p.distinctMasks <= stcamMaxMasks) {
    consider(makeStcam(rules, width, stcamMaxMasks));
  }
  return best;
}

}  // namespace flay::classifier
