#ifndef FLAY_CLASSIFIER_CLASSIFIER_H
#define FLAY_CLASSIFIER_CLASSIFIER_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "support/bitvec.h"

namespace flay::classifier {

/// One classification rule: key matches if (key & mask) == (value & mask).
/// Higher priority wins among matches.
struct Rule {
  BitVec value;
  BitVec mask;
  int32_t priority = 0;
  uint32_t actionId = 0;
};

/// A single-field packet classifier. Implementations trade generality for
/// memory: TCAM handles arbitrary masks at high per-bit cost, STCAM a
/// bounded number of distinct masks, hash tables only exact rules, tries
/// only prefix rules (§3, "Specializing packet-classification").
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Action id of the winning rule, or nullopt on miss.
  virtual std::optional<uint32_t> classify(const BitVec& key) const = 0;

  /// Raw storage bits used by the data structure.
  virtual uint64_t memoryBits() const = 0;

  /// Technology-weighted cost: TCAM cells are ~6x the silicon of SRAM
  /// cells, which is why replacing a TCAM pays (§3).
  virtual uint64_t costUnits() const = 0;

  virtual std::string name() const = 0;
  virtual size_t ruleCount() const = 0;
};

/// Priority-ordered TCAM: arbitrary value/mask rules.
std::unique_ptr<Classifier> makeTcam(std::vector<Rule> rules, uint32_t width);

/// Semi-TCAM: at most `maxMasks` distinct masks; per-mask exact groups.
/// Throws std::invalid_argument if the rule set needs more masks.
std::unique_ptr<Classifier> makeStcam(std::vector<Rule> rules, uint32_t width,
                                      uint32_t maxMasks = 8);

/// Exact-match hash table; all rules must have full masks.
std::unique_ptr<Classifier> makeExactHash(std::vector<Rule> rules,
                                          uint32_t width);

/// Longest-prefix-match binary trie; all rules must have prefix masks.
std::unique_ptr<Classifier> makeLpmTrie(std::vector<Rule> rules,
                                        uint32_t width);

/// Analysis of a rule set that drives structure choice.
struct RuleSetProfile {
  size_t rules = 0;
  size_t distinctMasks = 0;
  bool allExact = true;   // every mask all-ones
  bool allPrefix = true;  // every mask a prefix mask
};
RuleSetProfile profileRules(const std::vector<Rule>& rules);

/// Config-driven specialization: picks the cheapest structure that can
/// represent the rule set (exact -> hash, prefixes -> trie, few masks ->
/// STCAM, otherwise TCAM). This is what an incremental specializer re-runs
/// when the installed rules change shape.
std::unique_ptr<Classifier> chooseClassifier(std::vector<Rule> rules,
                                             uint32_t width,
                                             uint32_t stcamMaxMasks = 8);

}  // namespace flay::classifier

#endif  // FLAY_CLASSIFIER_CLASSIFIER_H
