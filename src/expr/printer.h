#ifndef FLAY_EXPR_PRINTER_H
#define FLAY_EXPR_PRINTER_H

#include <string>

#include "expr/arena.h"

namespace flay::expr {

struct PrintOptions {
  /// Decorate symbols the way the paper's Fig. 5 does: |x| for control-plane
  /// symbols, @x@ for data-plane symbols.
  bool paperNotation = true;
  /// Render bit-vector constants as hex instead of decimal.
  bool hexConstants = true;
  /// Stop descending below this depth and print "..." (0 = unlimited).
  size_t maxDepth = 0;
};

/// Renders `e` as a compact infix string, e.g.
///   (|port_table_configured| && |port_table_action| == 0x1 ? |p| : 0x0)
std::string toString(const ExprArena& arena, ExprRef e,
                     const PrintOptions& options = {});

}  // namespace flay::expr

#endif  // FLAY_EXPR_PRINTER_H
