#ifndef FLAY_EXPR_TRAVERSE_H
#define FLAY_EXPR_TRAVERSE_H

#include "expr/arena.h"

namespace flay::expr {

/// Writes the expression-valued children of `n` into `out` and returns how
/// many there are (0–3). Immediate operands (shift amounts, extract bounds)
/// are not children.
inline int children(const ExprNode& n, uint32_t out[3]) {
  switch (n.kind) {
    case ExprKind::kBvConst:
    case ExprKind::kBoolConst:
    case ExprKind::kVar:
    case ExprKind::kBoolVar:
      return 0;
    case ExprKind::kNot:
    case ExprKind::kNeg:
    case ExprKind::kZExt:
    case ExprKind::kShl:
    case ExprKind::kLShr:
    case ExprKind::kExtract:
    case ExprKind::kBNot:
      out[0] = n.a;
      return 1;
    case ExprKind::kAdd:
    case ExprKind::kSub:
    case ExprKind::kMul:
    case ExprKind::kUDiv:
    case ExprKind::kURem:
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kXor:
    case ExprKind::kConcat:
    case ExprKind::kEq:
    case ExprKind::kUlt:
    case ExprKind::kUle:
    case ExprKind::kBAnd:
    case ExprKind::kBOr:
      out[0] = n.a;
      out[1] = n.b;
      return 2;
    case ExprKind::kIte:
      out[0] = n.a;
      out[1] = n.b;
      out[2] = n.c;
      return 3;
  }
  return 0;
}

/// Rebuilds a node of `n`'s kind with new children, going through the smart
/// constructors so folding/canonicalization re-applies. Children not used by
/// the kind are ignored.
inline ExprRef rebuild(ExprArena& arena, const ExprNode& n, ExprRef a,
                       ExprRef b, ExprRef c) {
  switch (n.kind) {
    case ExprKind::kBvConst:
    case ExprKind::kBoolConst:
    case ExprKind::kVar:
    case ExprKind::kBoolVar:
      // Leaves are returned as-is; callers replace them before rebuild.
      return a;
    case ExprKind::kAdd: return arena.add(a, b);
    case ExprKind::kSub: return arena.sub(a, b);
    case ExprKind::kMul: return arena.mul(a, b);
    case ExprKind::kUDiv: return arena.udiv(a, b);
    case ExprKind::kURem: return arena.urem(a, b);
    case ExprKind::kAnd: return arena.bvAnd(a, b);
    case ExprKind::kOr: return arena.bvOr(a, b);
    case ExprKind::kXor: return arena.bvXor(a, b);
    case ExprKind::kConcat: return arena.concat(a, b);
    case ExprKind::kNot: return arena.bvNot(a);
    case ExprKind::kNeg: return arena.neg(a);
    case ExprKind::kShl: return arena.shl(a, n.b);
    case ExprKind::kLShr: return arena.lshr(a, n.b);
    case ExprKind::kExtract: return arena.extract(a, n.b, n.c);
    case ExprKind::kZExt: return arena.zext(a, n.width);
    case ExprKind::kEq: return arena.eq(a, b);
    case ExprKind::kUlt: return arena.ult(a, b);
    case ExprKind::kUle: return arena.ule(a, b);
    case ExprKind::kBAnd: return arena.bAnd(a, b);
    case ExprKind::kBOr: return arena.bOr(a, b);
    case ExprKind::kBNot: return arena.bNot(a);
    case ExprKind::kIte: return arena.ite(a, b, c);
  }
  return a;
}

}  // namespace flay::expr

#endif  // FLAY_EXPR_TRAVERSE_H
