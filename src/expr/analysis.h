#ifndef FLAY_EXPR_ANALYSIS_H
#define FLAY_EXPR_ANALYSIS_H

#include <unordered_set>
#include <vector>

#include "expr/arena.h"

namespace flay::expr {

/// Symbol ids of all variables reachable from `e`.
std::unordered_set<uint32_t> collectSymbols(const ExprArena& arena, ExprRef e);

/// Symbol ids of reachable variables restricted to one class. This is the
/// primitive behind Flay's taint map: the control-plane symbols of an
/// annotation are the taints that map updates to program points.
std::unordered_set<uint32_t> collectSymbols(const ExprArena& arena, ExprRef e,
                                            SymbolClass cls);

/// True if `e` contains no variables of class `cls`.
bool isFreeOf(const ExprArena& arena, ExprRef e, SymbolClass cls);

/// Number of distinct DAG nodes reachable from `e`. A proxy for the
/// "expression complexity" the paper's preprocessing step reduces.
size_t dagSize(const ExprArena& arena, ExprRef e);

/// Number of nodes counting shared subtrees once per occurrence (tree size).
/// Grows much faster than dagSize for nested table-entry chains.
size_t treeSize(const ExprArena& arena, ExprRef e);

/// Longest root-to-leaf path length.
size_t depth(const ExprArena& arena, ExprRef e);

}  // namespace flay::expr

#endif  // FLAY_EXPR_ANALYSIS_H
