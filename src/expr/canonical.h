#ifndef FLAY_EXPR_CANONICAL_H
#define FLAY_EXPR_CANONICAL_H

#include <string>
#include <string_view>
#include <unordered_map>

#include "expr/arena.h"

namespace flay::expr {

/// Renders an expression in a process-independent canonical form. The
/// arena's smart constructors order commutative operands by interning id
/// (arena.cpp), and interning ids depend on construction history — a
/// recovered service that re-encoded its tables from a checkpoint, or a
/// substitution pass that rebuilt a condition in a different order, holds
/// semantically identical but structurally permuted and/or chains. The
/// canonical form flattens those chains and sorts operands by their own
/// rendering, so equal formulas render equally regardless of construction
/// history. Two consumers key on this: the controller's crash-boundary
/// stateDigest and the verdict cache of the parallel semantics-check engine.
class CanonicalRenderer {
 public:
  explicit CanonicalRenderer(const ExprArena& arena) : arena_(arena) {}

  const std::string& render(ExprRef r);

 private:
  void flatten(ExprRef r, ExprKind kind, std::vector<std::string>* out);
  std::string nary(const char* op, std::initializer_list<ExprRef> kids);
  std::string renderNode(ExprRef r);

  const ExprArena& arena_;
  std::unordered_map<uint32_t, std::string> memo_;
};

/// FNV-1a accumulator over rendered pieces, with a separator mixed in after
/// each piece so concatenation ambiguity cannot alias two digests.
struct Fnv {
  uint64_t h = 1469598103934665603ull;
  void mix(std::string_view s) {
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    h ^= 0xff;  // field separator
    h *= 1099511628211ull;
  }
  std::string hex() const {
    static const char* digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 0; i < 16; ++i) out[i] = digits[(h >> (60 - 4 * i)) & 0xf];
    return out;
  }
};

}  // namespace flay::expr

#endif  // FLAY_EXPR_CANONICAL_H
