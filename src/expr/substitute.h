#ifndef FLAY_EXPR_SUBSTITUTE_H
#define FLAY_EXPR_SUBSTITUTE_H

#include <unordered_map>

#include "expr/arena.h"

namespace flay::expr {

/// Memoized variable substitution over the hash-consed DAG. Because rebuilds
/// go through the arena's folding constructors, substituting constants for
/// control-plane symbols *is* partial evaluation: guards collapse, dead ITE
/// arms disappear. The memo table is shared across apply() calls, which is
/// the incremental-evaluation analogue of Z3's e-matching cache the paper
/// relies on (§4.1, "Processing updates quickly").
class Substitution {
 public:
  explicit Substitution(ExprArena& arena) : arena_(arena) {}

  /// Maps a kVar/kBoolVar expression to its replacement. Sorts must match.
  /// Binding invalidates the memo table.
  void bind(ExprRef var, ExprRef value);

  /// Convenience: bind symbol (by name) to a constant.
  void bindConst(std::string_view name, const BitVec& value, SymbolClass cls);
  void bindConst(std::string_view name, bool value, SymbolClass cls);

  /// Returns `root` with all bound variables replaced, fully re-folded.
  ExprRef apply(ExprRef root);

  void clearBindings();
  size_t numBindings() const { return bindings_.size(); }

 private:
  ExprArena& arena_;
  std::unordered_map<uint32_t, ExprRef> bindings_;  // node id -> replacement
  std::unordered_map<uint32_t, ExprRef> memo_;      // node id -> rewritten
};

}  // namespace flay::expr

#endif  // FLAY_EXPR_SUBSTITUTE_H
