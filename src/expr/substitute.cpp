#include "expr/substitute.h"

#include <cassert>
#include <stdexcept>
#include <vector>

#include "expr/traverse.h"

namespace flay::expr {

void Substitution::bind(ExprRef var, ExprRef value) {
  const ExprNode& n = arena_.node(var);
  if (n.kind != ExprKind::kVar && n.kind != ExprKind::kBoolVar) {
    throw std::invalid_argument("Substitution::bind target must be a variable");
  }
  if (arena_.width(var) != arena_.width(value)) {
    throw std::invalid_argument("Substitution::bind sort mismatch");
  }
  bindings_[var.id] = value;
  memo_.clear();
}

void Substitution::bindConst(std::string_view name, const BitVec& value,
                             SymbolClass cls) {
  bind(arena_.var(name, value.width(), cls), arena_.bvConst(value));
}

void Substitution::bindConst(std::string_view name, bool value,
                             SymbolClass cls) {
  bind(arena_.boolVar(name, cls), arena_.boolConst(value));
}

void Substitution::clearBindings() {
  bindings_.clear();
  memo_.clear();
}

ExprRef Substitution::apply(ExprRef root) {
  if (!root.valid()) return root;
  // Iterative post-order rewrite; recursion depth is unbounded for large
  // control-plane entry chains, so no native recursion here.
  std::vector<uint32_t> stack{root.id};
  while (!stack.empty()) {
    uint32_t id = stack.back();
    if (memo_.count(id) != 0) {
      stack.pop_back();
      continue;
    }
    // By value: rebuild() interns through the arena, which may reallocate
    // the node vector while this binding is still live.
    const ExprNode n = arena_.node(ExprRef{id});
    if (n.kind == ExprKind::kVar || n.kind == ExprKind::kBoolVar) {
      auto it = bindings_.find(id);
      memo_.emplace(id, it != bindings_.end() ? it->second : ExprRef{id});
      stack.pop_back();
      continue;
    }
    uint32_t kids[3];
    int numKids = children(n, kids);
    if (numKids == 0) {
      memo_.emplace(id, ExprRef{id});
      stack.pop_back();
      continue;
    }
    bool ready = true;
    for (int i = 0; i < numKids; ++i) {
      if (memo_.count(kids[i]) == 0) {
        if (ready) ready = false;
        stack.push_back(kids[i]);
      }
    }
    if (!ready) continue;
    ExprRef newKids[3] = {{}, {}, {}};
    for (int i = 0; i < numKids; ++i) newKids[i] = memo_.at(kids[i]);
    memo_.emplace(id, rebuild(arena_, n, newKids[0], newKids[1], newKids[2]));
    stack.pop_back();
  }
  return memo_.at(root.id);
}

}  // namespace flay::expr
