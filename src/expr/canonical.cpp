#include "expr/canonical.h"

#include <algorithm>

namespace flay::expr {

const std::string& CanonicalRenderer::render(ExprRef r) {
  auto it = memo_.find(r.id);
  if (it != memo_.end()) return it->second;
  std::string s = r.valid() ? renderNode(r) : "<null>";
  return memo_.emplace(r.id, std::move(s)).first->second;
}

void CanonicalRenderer::flatten(ExprRef r, ExprKind kind,
                                std::vector<std::string>* out) {
  const ExprNode& n = arena_.node(r);
  if (n.kind != kind) {
    out->push_back(render(r));
    return;
  }
  flatten(ExprRef{n.a}, kind, out);
  flatten(ExprRef{n.b}, kind, out);
}

std::string CanonicalRenderer::nary(const char* op,
                                    std::initializer_list<ExprRef> kids) {
  std::string out = "(";
  out += op;
  for (ExprRef k : kids) {
    out += ' ';
    out += render(k);
  }
  out += ')';
  return out;
}

std::string CanonicalRenderer::renderNode(ExprRef r) {
  const ExprNode& n = arena_.node(r);
  using K = ExprKind;
  ExprRef a{n.a}, b{n.b}, c{n.c};
  switch (n.kind) {
    case K::kBvConst:
      return arena_.constValue(r).toHexString();
    case K::kBoolConst:
      return n.a != 0 ? "true" : "false";
    case K::kVar:
    case K::kBoolVar:
      return arena_.symbolInfo(n.a).name;
    case K::kBAnd:
    case K::kBOr: {
      std::vector<std::string> ops;
      flatten(r, n.kind, &ops);
      std::sort(ops.begin(), ops.end());
      std::string out = n.kind == K::kBAnd ? "(and" : "(or";
      for (const std::string& o : ops) {
        out += ' ';
        out += o;
      }
      out += ')';
      return out;
    }
    case K::kAdd: return nary("add", {a, b});
    case K::kSub: return nary("sub", {a, b});
    case K::kMul: return nary("mul", {a, b});
    case K::kUDiv: return nary("udiv", {a, b});
    case K::kURem: return nary("urem", {a, b});
    case K::kAnd: return nary("bvand", {a, b});
    case K::kOr: return nary("bvor", {a, b});
    case K::kXor: return nary("bvxor", {a, b});
    case K::kConcat: return nary("concat", {a, b});
    case K::kNot: return nary("bvnot", {a});
    case K::kNeg: return nary("neg", {a});
    case K::kShl:
      return "(shl " + render(a) + " " + std::to_string(n.b) + ")";
    case K::kLShr:
      return "(lshr " + render(a) + " " + std::to_string(n.b) + ")";
    case K::kExtract:
      return "(extract " + render(a) + " " + std::to_string(n.b) + " " +
             std::to_string(n.c) + ")";
    case K::kZExt:
      return "(zext " + render(a) + " " + std::to_string(n.width) + ")";
    case K::kEq: {
      // eq is commutative too; the arena does not id-order its operands,
      // but encoder and substitution construction order can still differ
      // across a recovery, so normalize here as well.
      std::string sa = render(a), sb = render(b);
      if (sb < sa) std::swap(sa, sb);
      return "(eq " + sa + " " + sb + ")";
    }
    case K::kUlt: return nary("ult", {a, b});
    case K::kUle: return nary("ule", {a, b});
    case K::kBNot: return nary("not", {a});
    case K::kIte: return nary("ite", {a, b, c});
  }
  return "<bad>";
}

}  // namespace flay::expr
