#include "expr/printer.h"

namespace flay::expr {

namespace {

class Printer {
 public:
  Printer(const ExprArena& arena, const PrintOptions& options)
      : arena_(arena), options_(options) {}

  // Recursive rendering is fine here: printing is a debugging aid and deep
  // expressions are depth-limited by callers via options.maxDepth.
  std::string print(ExprRef e, size_t curDepth) {
    if (!e.valid()) return "<null>";
    if (options_.maxDepth != 0 && curDepth > options_.maxDepth) return "...";
    const ExprNode& n = arena_.node(e);
    auto sub = [this, curDepth](uint32_t id) {
      return print(ExprRef{id}, curDepth + 1);
    };
    switch (n.kind) {
      case ExprKind::kBvConst: {
        const BitVec& v = arena_.constValue(e);
        return options_.hexConstants ? v.toHexString() : v.toDecimalString();
      }
      case ExprKind::kBoolConst:
        return n.a == 1 ? "true" : "false";
      case ExprKind::kVar:
      case ExprKind::kBoolVar: {
        const Symbol& s = arena_.symbolInfo(n.a);
        if (!options_.paperNotation) return s.name;
        return s.cls == SymbolClass::kControlPlane ? "|" + s.name + "|"
                                                   : "@" + s.name + "@";
      }
      case ExprKind::kAdd: return binary(n, " + ", curDepth);
      case ExprKind::kSub: return binary(n, " - ", curDepth);
      case ExprKind::kMul: return binary(n, " * ", curDepth);
      case ExprKind::kUDiv: return binary(n, " / ", curDepth);
      case ExprKind::kURem: return binary(n, " % ", curDepth);
      case ExprKind::kAnd: return binary(n, " & ", curDepth);
      case ExprKind::kOr: return binary(n, " | ", curDepth);
      case ExprKind::kXor: return binary(n, " ^ ", curDepth);
      case ExprKind::kConcat: return binary(n, " ++ ", curDepth);
      case ExprKind::kNot: return "~" + sub(n.a);
      case ExprKind::kNeg: return "-" + sub(n.a);
      case ExprKind::kShl:
        return "(" + sub(n.a) + " << " + std::to_string(n.b) + ")";
      case ExprKind::kLShr:
        return "(" + sub(n.a) + " >> " + std::to_string(n.b) + ")";
      case ExprKind::kExtract:
        return sub(n.a) + "[" + std::to_string(n.b) + ":" +
               std::to_string(n.c) + "]";
      case ExprKind::kZExt:
        return "zext<" + std::to_string(n.width) + ">(" + sub(n.a) + ")";
      case ExprKind::kEq: return binary(n, " == ", curDepth);
      case ExprKind::kUlt: return binary(n, " < ", curDepth);
      case ExprKind::kUle: return binary(n, " <= ", curDepth);
      case ExprKind::kBAnd: return binary(n, " && ", curDepth);
      case ExprKind::kBOr: return binary(n, " || ", curDepth);
      case ExprKind::kBNot: return "!" + sub(n.a);
      case ExprKind::kIte:
        return "(" + sub(n.a) + " ? " + sub(n.b) + " : " + sub(n.c) + ")";
    }
    return "<?>";
  }

 private:
  std::string binary(const ExprNode& n, const char* op, size_t curDepth) {
    return "(" + print(ExprRef{n.a}, curDepth + 1) + op +
           print(ExprRef{n.b}, curDepth + 1) + ")";
  }

  const ExprArena& arena_;
  const PrintOptions& options_;
};

}  // namespace

std::string toString(const ExprArena& arena, ExprRef e,
                     const PrintOptions& options) {
  return Printer(arena, options).print(e, 1);
}

}  // namespace flay::expr
