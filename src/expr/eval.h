#ifndef FLAY_EXPR_EVAL_H
#define FLAY_EXPR_EVAL_H

#include <optional>
#include <unordered_map>
#include <variant>

#include "expr/arena.h"

namespace flay::expr {

/// A concrete value: boolean or bit-vector.
using Value = std::variant<bool, BitVec>;

/// Concrete bottom-up evaluator used by the software-switch interpreter and
/// by differential tests. All variables reachable from an evaluated
/// expression must be bound; evaluate() throws otherwise.
class Evaluator {
 public:
  explicit Evaluator(const ExprArena& arena) : arena_(arena) {}

  /// Binds symbol `symbolId` to a value. Rebinding invalidates the memo.
  void bind(uint32_t symbolId, Value value);
  void bindVar(ExprRef var, Value value);
  void clear();

  /// Evaluates `e` to a concrete value; throws std::runtime_error on an
  /// unbound variable.
  Value evaluate(ExprRef e);
  BitVec evaluateBv(ExprRef e);
  bool evaluateBool(ExprRef e);

  /// Evaluates and returns nullopt instead of throwing when a free variable
  /// is reachable.
  std::optional<Value> tryEvaluate(ExprRef e);

 private:
  const ExprArena& arena_;
  std::unordered_map<uint32_t, Value> bindings_;  // symbol id -> value
  std::unordered_map<uint32_t, Value> memo_;      // node id -> value
};

}  // namespace flay::expr

#endif  // FLAY_EXPR_EVAL_H
