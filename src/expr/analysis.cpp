#include "expr/analysis.h"

#include <unordered_map>

#include "expr/traverse.h"

namespace flay::expr {

namespace {

/// Visits each reachable node exactly once, pre-order.
template <typename Fn>
void visitDag(const ExprArena& arena, ExprRef root, Fn&& fn) {
  if (!root.valid()) return;
  std::unordered_set<uint32_t> seen;
  std::vector<uint32_t> stack{root.id};
  while (!stack.empty()) {
    uint32_t id = stack.back();
    stack.pop_back();
    if (!seen.insert(id).second) continue;
    const ExprNode& n = arena.node(ExprRef{id});
    fn(ExprRef{id}, n);
    uint32_t kids[3];
    int numKids = children(n, kids);
    for (int i = 0; i < numKids; ++i) stack.push_back(kids[i]);
  }
}

}  // namespace

std::unordered_set<uint32_t> collectSymbols(const ExprArena& arena, ExprRef e) {
  std::unordered_set<uint32_t> result;
  visitDag(arena, e, [&result](ExprRef, const ExprNode& n) {
    if (n.kind == ExprKind::kVar || n.kind == ExprKind::kBoolVar) {
      result.insert(n.a);
    }
  });
  return result;
}

std::unordered_set<uint32_t> collectSymbols(const ExprArena& arena, ExprRef e,
                                            SymbolClass cls) {
  std::unordered_set<uint32_t> result;
  visitDag(arena, e, [&](ExprRef, const ExprNode& n) {
    if ((n.kind == ExprKind::kVar || n.kind == ExprKind::kBoolVar) &&
        arena.symbolInfo(n.a).cls == cls) {
      result.insert(n.a);
    }
  });
  return result;
}

bool isFreeOf(const ExprArena& arena, ExprRef e, SymbolClass cls) {
  return collectSymbols(arena, e, cls).empty();
}

size_t dagSize(const ExprArena& arena, ExprRef e) {
  size_t count = 0;
  visitDag(arena, e, [&count](ExprRef, const ExprNode&) { ++count; });
  return count;
}

size_t treeSize(const ExprArena& arena, ExprRef root) {
  if (!root.valid()) return 0;
  // Bottom-up with memoization; sizes can overflow for pathological DAGs, so
  // saturate instead of wrapping.
  std::unordered_map<uint32_t, size_t> memo;
  std::vector<uint32_t> stack{root.id};
  constexpr size_t kMax = ~size_t{0};
  while (!stack.empty()) {
    uint32_t id = stack.back();
    if (memo.count(id) != 0) {
      stack.pop_back();
      continue;
    }
    const ExprNode& n = arena.node(ExprRef{id});
    uint32_t kids[3];
    int numKids = children(n, kids);
    bool ready = true;
    for (int i = 0; i < numKids; ++i) {
      if (memo.count(kids[i]) == 0) {
        ready = false;
        stack.push_back(kids[i]);
      }
    }
    if (!ready) continue;
    size_t total = 1;
    for (int i = 0; i < numKids; ++i) {
      size_t k = memo.at(kids[i]);
      total = (k > kMax - total) ? kMax : total + k;
    }
    memo.emplace(id, total);
    stack.pop_back();
  }
  return memo.at(root.id);
}

size_t depth(const ExprArena& arena, ExprRef root) {
  if (!root.valid()) return 0;
  std::unordered_map<uint32_t, size_t> memo;
  std::vector<uint32_t> stack{root.id};
  while (!stack.empty()) {
    uint32_t id = stack.back();
    if (memo.count(id) != 0) {
      stack.pop_back();
      continue;
    }
    const ExprNode& n = arena.node(ExprRef{id});
    uint32_t kids[3];
    int numKids = children(n, kids);
    bool ready = true;
    for (int i = 0; i < numKids; ++i) {
      if (memo.count(kids[i]) == 0) {
        ready = false;
        stack.push_back(kids[i]);
      }
    }
    if (!ready) continue;
    size_t maxKid = 0;
    for (int i = 0; i < numKids; ++i) maxKid = std::max(maxKid, memo.at(kids[i]));
    memo.emplace(id, 1 + maxKid);
    stack.pop_back();
  }
  return memo.at(root.id);
}

}  // namespace flay::expr
