#include "expr/eval.h"

#include <stdexcept>
#include <vector>

#include "expr/traverse.h"

namespace flay::expr {

namespace {

/// Applies a concrete operation to already-evaluated children.
Value applyOp(const ExprNode& n, const Value* kids) {
  auto bv = [&kids](int i) -> const BitVec& { return std::get<BitVec>(kids[i]); };
  auto bl = [&kids](int i) -> bool { return std::get<bool>(kids[i]); };
  switch (n.kind) {
    case ExprKind::kAdd: return bv(0).add(bv(1));
    case ExprKind::kSub: return bv(0).sub(bv(1));
    case ExprKind::kMul: return bv(0).mul(bv(1));
    case ExprKind::kUDiv: return bv(0).udiv(bv(1));
    case ExprKind::kURem: return bv(0).urem(bv(1));
    case ExprKind::kAnd: return bv(0).bitAnd(bv(1));
    case ExprKind::kOr: return bv(0).bitOr(bv(1));
    case ExprKind::kXor: return bv(0).bitXor(bv(1));
    case ExprKind::kConcat: return bv(0).concat(bv(1));
    case ExprKind::kNot: return bv(0).bitNot();
    case ExprKind::kNeg: return bv(0).neg();
    case ExprKind::kShl: return bv(0).shl(n.b);
    case ExprKind::kLShr: return bv(0).lshr(n.b);
    case ExprKind::kExtract: return bv(0).slice(n.b, n.c);
    case ExprKind::kZExt: return bv(0).zext(n.width);
    case ExprKind::kEq:
      if (std::holds_alternative<bool>(kids[0])) return bl(0) == bl(1);
      return bv(0).eq(bv(1));
    case ExprKind::kUlt: return bv(0).ult(bv(1));
    case ExprKind::kUle: return bv(0).ule(bv(1));
    case ExprKind::kBAnd: return bl(0) && bl(1);
    case ExprKind::kBOr: return bl(0) || bl(1);
    case ExprKind::kBNot: return !bl(0);
    case ExprKind::kIte: return bl(0) ? kids[1] : kids[2];
    default:
      // Leaves (constants/variables) are handled by the evaluator loop.
      throw std::logic_error("applyOp: unexpected leaf kind");
  }
}

}  // namespace

void Evaluator::bind(uint32_t symbolId, Value value) {
  bindings_[symbolId] = std::move(value);
  memo_.clear();
}

void Evaluator::bindVar(ExprRef var, Value value) {
  const ExprNode& n = arena_.node(var);
  if (n.kind != ExprKind::kVar && n.kind != ExprKind::kBoolVar) {
    throw std::invalid_argument("Evaluator::bindVar target must be a variable");
  }
  bind(n.a, std::move(value));
}

void Evaluator::clear() {
  bindings_.clear();
  memo_.clear();
}

std::optional<Value> Evaluator::tryEvaluate(ExprRef root) {
  if (!root.valid()) return std::nullopt;
  std::vector<uint32_t> stack{root.id};
  while (!stack.empty()) {
    uint32_t id = stack.back();
    if (memo_.count(id) != 0) {
      stack.pop_back();
      continue;
    }
    const ExprNode& n = arena_.node(ExprRef{id});
    switch (n.kind) {
      case ExprKind::kBvConst:
        memo_.emplace(id, arena_.constValue(ExprRef{id}));
        stack.pop_back();
        continue;
      case ExprKind::kBoolConst:
        memo_.emplace(id, n.a == 1);
        stack.pop_back();
        continue;
      case ExprKind::kVar:
      case ExprKind::kBoolVar: {
        auto it = bindings_.find(n.a);
        if (it == bindings_.end()) return std::nullopt;
        memo_.emplace(id, it->second);
        stack.pop_back();
        continue;
      }
      default:
        break;
    }
    uint32_t kids[3];
    int numKids = children(n, kids);
    bool ready = true;
    for (int i = 0; i < numKids; ++i) {
      if (memo_.count(kids[i]) == 0) {
        ready = false;
        stack.push_back(kids[i]);
      }
    }
    if (!ready) continue;
    Value vals[3];
    for (int i = 0; i < numKids; ++i) vals[i] = memo_.at(kids[i]);
    memo_.emplace(id, applyOp(n, vals));
    stack.pop_back();
  }
  return memo_.at(root.id);
}

Value Evaluator::evaluate(ExprRef e) {
  auto v = tryEvaluate(e);
  if (!v) throw std::runtime_error("Evaluator: unbound variable in expression");
  return *v;
}

BitVec Evaluator::evaluateBv(ExprRef e) { return std::get<BitVec>(evaluate(e)); }

bool Evaluator::evaluateBool(ExprRef e) { return std::get<bool>(evaluate(e)); }

}  // namespace flay::expr
