#ifndef FLAY_EXPR_ARENA_H
#define FLAY_EXPR_ARENA_H

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "support/bitvec.h"

namespace flay::expr {

/// Reference to an interned expression node. Value 0 is the null reference.
struct ExprRef {
  uint32_t id = 0;
  bool valid() const { return id != 0; }
  bool operator==(const ExprRef&) const = default;
};

struct ExprRefHash {
  size_t operator()(ExprRef r) const { return r.id * 2654435761u; }
};

/// Whether a symbol's value is supplied by packets (data plane) or by the
/// controller (control plane). The distinction drives Flay's taint tracking:
/// control-plane symbols are substituted with concrete assignments while
/// data-plane symbols stay free (Section 2 of the paper).
enum class SymbolClass : uint8_t { kDataPlane, kControlPlane };

struct Symbol {
  std::string name;
  uint32_t width = 0;  // 0 = boolean sort
  SymbolClass cls = SymbolClass::kDataPlane;
};

enum class ExprKind : uint8_t {
  kBvConst,    // a = constant-pool index
  kBoolConst,  // a = 0 or 1
  kVar,        // a = symbol index (bit-vector sort)
  kBoolVar,    // a = symbol index (boolean sort)
  // Bit-vector binary (a, b = operands).
  kAdd, kSub, kMul, kUDiv, kURem,
  kAnd, kOr, kXor,
  kConcat,  // a = high bits, b = low bits
  // Bit-vector unary (a = operand).
  kNot, kNeg,
  kShl,      // a = operand, b = immediate shift amount
  kLShr,     // a = operand, b = immediate shift amount
  kExtract,  // a = operand, b = hi, c = lo
  kZExt,     // a = operand, width = new width
  // Predicates (result sort: bool).
  kEq, kUlt, kUle,
  // Boolean connectives.
  kBAnd, kBOr, kBNot,
  // a = bool condition, b = then, c = else; sort follows b.
  kIte,
};

/// One interned node. `width` is the bit-vector width of the result, or 0
/// for boolean-sorted nodes.
struct ExprNode {
  ExprKind kind;
  uint32_t width;
  uint32_t a = 0;
  uint32_t b = 0;
  uint32_t c = 0;
  bool operator==(const ExprNode&) const = default;
};

/// Hash-consed expression arena. Construction functions are "smart": they
/// apply local constant folding and canonicalization, so structurally equal
/// (after folding) expressions always share one ExprRef and equality checks
/// are O(1). This is what makes Flay's "did this annotation change?" query
/// cheap (Section 4.1, "Processing updates quickly").
class ExprArena {
 public:
  ExprArena();

  // --- Symbols -----------------------------------------------------------
  /// Interns a symbol by name; width/class must agree on reuse.
  uint32_t symbol(std::string_view name, uint32_t width, SymbolClass cls);
  const Symbol& symbolInfo(uint32_t symbolId) const { return symbols_[symbolId]; }
  size_t numSymbols() const { return symbols_.size(); }

  // --- Leaves ------------------------------------------------------------
  ExprRef bvConst(const BitVec& value);
  ExprRef bvConst(uint32_t width, uint64_t value) {
    return bvConst(BitVec(width, value));
  }
  ExprRef boolConst(bool value);
  ExprRef var(std::string_view name, uint32_t width, SymbolClass cls);
  ExprRef boolVar(std::string_view name, SymbolClass cls);

  // --- Bit-vector operations ---------------------------------------------
  ExprRef add(ExprRef a, ExprRef b);
  ExprRef sub(ExprRef a, ExprRef b);
  ExprRef mul(ExprRef a, ExprRef b);
  ExprRef udiv(ExprRef a, ExprRef b);
  ExprRef urem(ExprRef a, ExprRef b);
  ExprRef bvAnd(ExprRef a, ExprRef b);
  ExprRef bvOr(ExprRef a, ExprRef b);
  ExprRef bvXor(ExprRef a, ExprRef b);
  ExprRef bvNot(ExprRef a);
  ExprRef neg(ExprRef a);
  ExprRef shl(ExprRef a, uint32_t amount);
  ExprRef lshr(ExprRef a, uint32_t amount);
  ExprRef extract(ExprRef a, uint32_t hi, uint32_t lo);
  ExprRef zext(ExprRef a, uint32_t newWidth);
  ExprRef concat(ExprRef hi, ExprRef lo);

  // --- Predicates and boolean connectives ---------------------------------
  ExprRef eq(ExprRef a, ExprRef b);
  ExprRef neq(ExprRef a, ExprRef b) { return bNot(eq(a, b)); }
  ExprRef ult(ExprRef a, ExprRef b);
  ExprRef ule(ExprRef a, ExprRef b);
  ExprRef bAnd(ExprRef a, ExprRef b);
  ExprRef bOr(ExprRef a, ExprRef b);
  ExprRef bNot(ExprRef a);
  ExprRef implies(ExprRef a, ExprRef b) { return bOr(bNot(a), b); }
  ExprRef ite(ExprRef cond, ExprRef thenE, ExprRef elseE);

  // --- Inspection ----------------------------------------------------------
  /// WARNING: the returned reference points into the arena's node storage
  /// and is invalidated by any later interning that reallocates (any smart
  /// constructor may intern). Copy the node, or re-fetch after constructing
  /// — holding the reference across construction is the PR 2 use-after-free
  /// class. PinnedNode (below) asserts this discipline in debug builds, and
  /// the FLAY_EXPR_POISON_REALLOC build mode makes every intern reallocate
  /// so ASan catches violations deterministically.
  const ExprNode& node(ExprRef r) const { return nodes_[r.id]; }
  /// Incremented whenever node storage reallocates (i.e. whenever
  /// references previously returned by node() become dangling).
  uint64_t nodeGeneration() const { return nodeGeneration_; }
  uint32_t width(ExprRef r) const { return nodes_[r.id].width; }
  bool isBool(ExprRef r) const { return nodes_[r.id].width == 0; }
  bool isConst(ExprRef r) const {
    ExprKind k = nodes_[r.id].kind;
    return k == ExprKind::kBvConst || k == ExprKind::kBoolConst;
  }
  bool isTrue(ExprRef r) const {
    return nodes_[r.id].kind == ExprKind::kBoolConst && nodes_[r.id].a == 1;
  }
  bool isFalse(ExprRef r) const {
    return nodes_[r.id].kind == ExprKind::kBoolConst && nodes_[r.id].a == 0;
  }
  /// Constant value of a kBvConst node.
  const BitVec& constValue(ExprRef r) const {
    return constPool_[nodes_[r.id].a];
  }
  size_t numNodes() const { return nodes_.size(); }

 private:
  ExprRef intern(ExprNode n);
  /// True if `r` is the bit-wise complement of `o` or vice versa.
  bool isComplement(ExprRef r, ExprRef o) const;

  struct NodeHash {
    size_t operator()(const ExprNode& n) const;
  };

  std::vector<ExprNode> nodes_;
  std::unordered_map<ExprNode, uint32_t, NodeHash> internMap_;
  std::vector<BitVec> constPool_;
  std::unordered_map<size_t, std::vector<uint32_t>> constPoolIndex_;
  std::vector<Symbol> symbols_;
  std::unordered_map<std::string, uint32_t> symbolIndex_;
  uint64_t nodeGeneration_ = 0;
};

/// Debug guard for code that wants node data across calls that may intern:
/// records the arena's node generation at construction and asserts on every
/// access that no reallocation has happened since — exactly the condition
/// under which a raw `const ExprNode&` from node() would now dangle. Access
/// re-fetches through the arena, so the guard itself is always safe; the
/// assert is what surfaces the latent use-after-free in debug builds (and
/// on every intern under FLAY_EXPR_POISON_REALLOC).
class PinnedNode {
 public:
  PinnedNode(const ExprArena& arena, ExprRef ref)
      : arena_(arena), ref_(ref), generation_(arena.nodeGeneration()) {}

  const ExprNode& operator*() const { return get(); }
  const ExprNode* operator->() const { return &get(); }
  /// True until the arena reallocates node storage.
  bool fresh() const { return arena_.nodeGeneration() == generation_; }
  /// Re-arms the guard after an intentional interning.
  void refresh() { generation_ = arena_.nodeGeneration(); }

 private:
  const ExprNode& get() const;

  const ExprArena& arena_;
  ExprRef ref_;
  uint64_t generation_;
};

}  // namespace flay::expr

#endif  // FLAY_EXPR_ARENA_H
