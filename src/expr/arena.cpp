#include "expr/arena.h"

#include <cassert>
#include <stdexcept>

namespace flay::expr {

size_t ExprArena::NodeHash::operator()(const ExprNode& n) const {
  size_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<uint64_t>(n.kind));
  mix(n.width);
  mix(n.a);
  mix(n.b);
  mix(n.c);
  return h;
}

ExprArena::ExprArena() {
  // Index 0 is the null node so ExprRef{0} is never a real expression.
  nodes_.push_back({ExprKind::kBoolConst, 0, 0xFFFFFFFF, 0, 0});
}

ExprRef ExprArena::intern(ExprNode n) {
  auto [it, inserted] = internMap_.try_emplace(n, 0);
  if (inserted) {
#ifdef FLAY_EXPR_POISON_REALLOC
    // Hardening build mode: move node storage on EVERY intern, so any
    // `const ExprNode&` held across a smart constructor dangles immediately
    // and ASan reports the use-after-free at its first dereference instead
    // of whenever a capacity doubling happens to land there.
    {
      std::vector<ExprNode> moved;
      moved.reserve(nodes_.size() + 1);
      moved.assign(nodes_.begin(), nodes_.end());
      nodes_.swap(moved);
      ++nodeGeneration_;
    }
#else
    if (nodes_.size() == nodes_.capacity()) ++nodeGeneration_;
#endif
    nodes_.push_back(n);
    it->second = static_cast<uint32_t>(nodes_.size() - 1);
  }
  return ExprRef{it->second};
}

const ExprNode& PinnedNode::get() const {
  assert(fresh() &&
         "ExprNode reference held across an intern that reallocated node "
         "storage — copy the node or call refresh() after constructing");
  return arena_.node(ref_);
}

uint32_t ExprArena::symbol(std::string_view name, uint32_t width,
                           SymbolClass cls) {
  auto it = symbolIndex_.find(std::string(name));
  if (it != symbolIndex_.end()) {
    const Symbol& s = symbols_[it->second];
    if (s.width != width || s.cls != cls) {
      throw std::invalid_argument("symbol '" + std::string(name) +
                                  "' re-declared with different width/class");
    }
    return it->second;
  }
  symbols_.push_back({std::string(name), width, cls});
  uint32_t id = static_cast<uint32_t>(symbols_.size() - 1);
  symbolIndex_.emplace(std::string(name), id);
  return id;
}

ExprRef ExprArena::bvConst(const BitVec& value) {
  // Dedupe through a hash bucket of pool indices.
  auto& bucket = constPoolIndex_[value.hash()];
  for (uint32_t idx : bucket) {
    if (constPool_[idx] == value) {
      return intern({ExprKind::kBvConst, value.width(), idx, 0, 0});
    }
  }
  constPool_.push_back(value);
  uint32_t idx = static_cast<uint32_t>(constPool_.size() - 1);
  bucket.push_back(idx);
  return intern({ExprKind::kBvConst, value.width(), idx, 0, 0});
}

ExprRef ExprArena::boolConst(bool value) {
  return intern({ExprKind::kBoolConst, 0, value ? 1u : 0u, 0, 0});
}

ExprRef ExprArena::var(std::string_view name, uint32_t width, SymbolClass cls) {
  assert(width > 0 && "bit-vector variable needs a positive width");
  uint32_t id = symbol(name, width, cls);
  return intern({ExprKind::kVar, width, id, 0, 0});
}

ExprRef ExprArena::boolVar(std::string_view name, SymbolClass cls) {
  uint32_t id = symbol(name, 0, cls);
  return intern({ExprKind::kBoolVar, 0, id, 0, 0});
}

// ---------------------------------------------------------------------------
// Bit-vector operations
// ---------------------------------------------------------------------------

ExprRef ExprArena::add(ExprRef a, ExprRef b) {
  assert(width(a) == width(b) && width(a) > 0);
  if (isConst(a) && isConst(b)) return bvConst(constValue(a).add(constValue(b)));
  if (isConst(a) && constValue(a).isZero()) return b;
  if (isConst(b) && constValue(b).isZero()) return a;
  if (isConst(a)) std::swap(a, b);  // canonical: constant on the right
  if (a.id > b.id && !isConst(b)) std::swap(a, b);
  return intern({ExprKind::kAdd, width(a), a.id, b.id, 0});
}

ExprRef ExprArena::sub(ExprRef a, ExprRef b) {
  assert(width(a) == width(b) && width(a) > 0);
  if (isConst(a) && isConst(b)) return bvConst(constValue(a).sub(constValue(b)));
  if (isConst(b) && constValue(b).isZero()) return a;
  if (a == b) return bvConst(BitVec::zero(width(a)));
  return intern({ExprKind::kSub, width(a), a.id, b.id, 0});
}

ExprRef ExprArena::mul(ExprRef a, ExprRef b) {
  assert(width(a) == width(b) && width(a) > 0);
  if (isConst(a) && isConst(b)) return bvConst(constValue(a).mul(constValue(b)));
  if (isConst(a)) std::swap(a, b);
  if (isConst(b)) {
    const BitVec& v = constValue(b);
    if (v.isZero()) return b;
    if (v == BitVec::one(v.width())) return a;
    // Strength reduction: multiply by a power of two becomes a shift.
    if (v.countOnes() == 1) {
      uint32_t sh = 0;
      while (!v.bit(sh)) ++sh;
      return shl(a, sh);
    }
  }
  if (a.id > b.id && !isConst(b)) std::swap(a, b);
  return intern({ExprKind::kMul, width(a), a.id, b.id, 0});
}

ExprRef ExprArena::udiv(ExprRef a, ExprRef b) {
  assert(width(a) == width(b) && width(a) > 0);
  if (isConst(a) && isConst(b)) return bvConst(constValue(a).udiv(constValue(b)));
  if (isConst(b)) {
    const BitVec& v = constValue(b);
    if (v == BitVec::one(v.width())) return a;
    if (v.countOnes() == 1) {
      uint32_t sh = 0;
      while (!v.bit(sh)) ++sh;
      return lshr(a, sh);
    }
  }
  return intern({ExprKind::kUDiv, width(a), a.id, b.id, 0});
}

ExprRef ExprArena::urem(ExprRef a, ExprRef b) {
  assert(width(a) == width(b) && width(a) > 0);
  if (isConst(a) && isConst(b)) return bvConst(constValue(a).urem(constValue(b)));
  if (isConst(b)) {
    const BitVec& v = constValue(b);
    if (v == BitVec::one(v.width())) return bvConst(BitVec::zero(v.width()));
    // x % 2^k == x & (2^k - 1)
    if (v.countOnes() == 1) {
      return bvAnd(a, bvConst(v.sub(BitVec::one(v.width()))));
    }
  }
  return intern({ExprKind::kURem, width(a), a.id, b.id, 0});
}

ExprRef ExprArena::bvAnd(ExprRef a, ExprRef b) {
  assert(width(a) == width(b) && width(a) > 0);
  if (isConst(a) && isConst(b)) {
    return bvConst(constValue(a).bitAnd(constValue(b)));
  }
  if (isConst(a)) std::swap(a, b);
  if (isConst(b)) {
    const BitVec& v = constValue(b);
    if (v.isZero()) return b;
    if (v.isAllOnes()) return a;
  }
  if (a == b) return a;
  if (isComplement(a, b)) return bvConst(BitVec::zero(width(a)));
  if (a.id > b.id && !isConst(b)) std::swap(a, b);
  return intern({ExprKind::kAnd, width(a), a.id, b.id, 0});
}

ExprRef ExprArena::bvOr(ExprRef a, ExprRef b) {
  assert(width(a) == width(b) && width(a) > 0);
  if (isConst(a) && isConst(b)) return bvConst(constValue(a).bitOr(constValue(b)));
  if (isConst(a)) std::swap(a, b);
  if (isConst(b)) {
    const BitVec& v = constValue(b);
    if (v.isZero()) return a;
    if (v.isAllOnes()) return b;
  }
  if (a == b) return a;
  if (isComplement(a, b)) return bvConst(BitVec::allOnes(width(a)));
  if (a.id > b.id && !isConst(b)) std::swap(a, b);
  return intern({ExprKind::kOr, width(a), a.id, b.id, 0});
}

ExprRef ExprArena::bvXor(ExprRef a, ExprRef b) {
  assert(width(a) == width(b) && width(a) > 0);
  if (isConst(a) && isConst(b)) {
    return bvConst(constValue(a).bitXor(constValue(b)));
  }
  if (isConst(a)) std::swap(a, b);
  if (isConst(b)) {
    const BitVec& v = constValue(b);
    if (v.isZero()) return a;
    if (v.isAllOnes()) return bvNot(a);
  }
  if (a == b) return bvConst(BitVec::zero(width(a)));
  if (a.id > b.id && !isConst(b)) std::swap(a, b);
  return intern({ExprKind::kXor, width(a), a.id, b.id, 0});
}

ExprRef ExprArena::bvNot(ExprRef a) {
  assert(width(a) > 0);
  if (isConst(a)) return bvConst(constValue(a).bitNot());
  if (node(a).kind == ExprKind::kNot) return ExprRef{node(a).a};
  return intern({ExprKind::kNot, width(a), a.id, 0, 0});
}

ExprRef ExprArena::neg(ExprRef a) {
  assert(width(a) > 0);
  if (isConst(a)) return bvConst(constValue(a).neg());
  if (node(a).kind == ExprKind::kNeg) return ExprRef{node(a).a};
  return intern({ExprKind::kNeg, width(a), a.id, 0, 0});
}

ExprRef ExprArena::shl(ExprRef a, uint32_t amount) {
  assert(width(a) > 0);
  if (amount == 0) return a;
  if (amount >= width(a)) return bvConst(BitVec::zero(width(a)));
  if (isConst(a)) return bvConst(constValue(a).shl(amount));
  return intern({ExprKind::kShl, width(a), a.id, amount, 0});
}

ExprRef ExprArena::lshr(ExprRef a, uint32_t amount) {
  assert(width(a) > 0);
  if (amount == 0) return a;
  if (amount >= width(a)) return bvConst(BitVec::zero(width(a)));
  if (isConst(a)) return bvConst(constValue(a).lshr(amount));
  return intern({ExprKind::kLShr, width(a), a.id, amount, 0});
}

ExprRef ExprArena::extract(ExprRef a, uint32_t hi, uint32_t lo) {
  assert(hi < width(a) && lo <= hi);
  if (lo == 0 && hi == width(a) - 1) return a;
  if (isConst(a)) return bvConst(constValue(a).slice(hi, lo));
  // By value: the recursive extract/zext calls below can intern and
  // reallocate nodes_, which would dangle a reference held across them.
  const ExprNode n = node(a);
  // extract of extract composes.
  if (n.kind == ExprKind::kExtract) {
    return extract(ExprRef{n.a}, n.c + hi, n.c + lo);
  }
  // extract entirely within the original operand of a zext, or entirely in
  // the zero padding, simplifies.
  if (n.kind == ExprKind::kZExt) {
    uint32_t origWidth = width(ExprRef{n.a});
    if (hi < origWidth) return extract(ExprRef{n.a}, hi, lo);
    if (lo >= origWidth) return bvConst(BitVec::zero(hi - lo + 1));
  }
  // extract entirely within one half of a concat narrows to that half.
  if (n.kind == ExprKind::kConcat) {
    uint32_t lowWidth = width(ExprRef{n.b});
    if (hi < lowWidth) return extract(ExprRef{n.b}, hi, lo);
    if (lo >= lowWidth) return extract(ExprRef{n.a}, hi - lowWidth, lo - lowWidth);
  }
  return intern({ExprKind::kExtract, hi - lo + 1, a.id, hi, lo});
}

ExprRef ExprArena::zext(ExprRef a, uint32_t newWidth) {
  assert(newWidth >= width(a));
  if (newWidth == width(a)) return a;
  if (isConst(a)) return bvConst(constValue(a).zext(newWidth));
  if (node(a).kind == ExprKind::kZExt) return zext(ExprRef{node(a).a}, newWidth);
  return intern({ExprKind::kZExt, newWidth, a.id, 0, 0});
}

ExprRef ExprArena::concat(ExprRef hi, ExprRef lo) {
  assert(width(hi) > 0 && width(lo) > 0);
  if (isConst(hi) && isConst(lo)) {
    return bvConst(constValue(hi).concat(constValue(lo)));
  }
  // 0-valued high part is a zero extension.
  if (isConst(hi) && constValue(hi).isZero()) {
    return zext(lo, width(hi) + width(lo));
  }
  return intern({ExprKind::kConcat, width(hi) + width(lo), hi.id, lo.id, 0});
}

// ---------------------------------------------------------------------------
// Predicates and boolean connectives
// ---------------------------------------------------------------------------

ExprRef ExprArena::eq(ExprRef a, ExprRef b) {
  assert(width(a) == width(b));
  if (a == b) return boolConst(true);
  // Push equality with a constant into an ITE whose arms contain constants:
  // (c ? k1 : e) == k  becomes  c ? (k1 == k) : (e == k), which folds the
  // reachable arm away. This is the rewrite that collapses table-selector
  // chains after control-plane substitution.
  if (isConst(b) && node(a).kind == ExprKind::kIte) {
    // By value: the recursive eq/ite calls intern and may reallocate nodes_,
    // so a reference into the arena must not live across them.
    const ExprNode n = node(a);
    if (isConst(ExprRef{n.b}) || isConst(ExprRef{n.c})) {
      return ite(ExprRef{n.a}, eq(ExprRef{n.b}, b), eq(ExprRef{n.c}, b));
    }
  }
  if (isConst(a) && node(b).kind == ExprKind::kIte) {
    const ExprNode n = node(b);  // by value, as above
    if (isConst(ExprRef{n.b}) || isConst(ExprRef{n.c})) {
      return ite(ExprRef{n.a}, eq(a, ExprRef{n.b}), eq(a, ExprRef{n.c}));
    }
  }
  if (isBool(a)) {
    // Boolean equality (iff): fold constants, x == true -> x, etc.
    if (isConst(a) && isConst(b)) return boolConst(isTrue(a) == isTrue(b));
    if (isTrue(a)) return b;
    if (isTrue(b)) return a;
    if (isFalse(a)) return bNot(b);
    if (isFalse(b)) return bNot(a);
  } else {
    if (isConst(a) && isConst(b)) {
      return boolConst(constValue(a).eq(constValue(b)));
    }
  }
  if (a.id > b.id) std::swap(a, b);
  return intern({ExprKind::kEq, 0, a.id, b.id, 0});
}

ExprRef ExprArena::ult(ExprRef a, ExprRef b) {
  assert(width(a) == width(b) && width(a) > 0);
  if (a == b) return boolConst(false);
  if (isConst(a) && isConst(b)) return boolConst(constValue(a).ult(constValue(b)));
  if (isConst(b) && constValue(b).isZero()) return boolConst(false);
  if (isConst(a) && constValue(a).isAllOnes()) return boolConst(false);
  return intern({ExprKind::kUlt, 0, a.id, b.id, 0});
}

ExprRef ExprArena::ule(ExprRef a, ExprRef b) {
  assert(width(a) == width(b) && width(a) > 0);
  if (a == b) return boolConst(true);
  if (isConst(a) && isConst(b)) return boolConst(constValue(a).ule(constValue(b)));
  if (isConst(a) && constValue(a).isZero()) return boolConst(true);
  if (isConst(b) && constValue(b).isAllOnes()) return boolConst(true);
  return intern({ExprKind::kUle, 0, a.id, b.id, 0});
}

ExprRef ExprArena::bAnd(ExprRef a, ExprRef b) {
  assert(isBool(a) && isBool(b));
  if (isFalse(a) || isFalse(b)) return boolConst(false);
  if (isTrue(a)) return b;
  if (isTrue(b)) return a;
  if (a == b) return a;
  if (isComplement(a, b)) return boolConst(false);
  if (a.id > b.id) std::swap(a, b);
  return intern({ExprKind::kBAnd, 0, a.id, b.id, 0});
}

ExprRef ExprArena::bOr(ExprRef a, ExprRef b) {
  assert(isBool(a) && isBool(b));
  if (isTrue(a) || isTrue(b)) return boolConst(true);
  if (isFalse(a)) return b;
  if (isFalse(b)) return a;
  if (a == b) return a;
  if (isComplement(a, b)) return boolConst(true);
  if (a.id > b.id) std::swap(a, b);
  return intern({ExprKind::kBOr, 0, a.id, b.id, 0});
}

ExprRef ExprArena::bNot(ExprRef a) {
  assert(isBool(a));
  if (isConst(a)) return boolConst(!isTrue(a));
  if (node(a).kind == ExprKind::kBNot) return ExprRef{node(a).a};
  return intern({ExprKind::kBNot, 0, a.id, 0, 0});
}

ExprRef ExprArena::ite(ExprRef cond, ExprRef thenE, ExprRef elseE) {
  assert(isBool(cond));
  assert(width(thenE) == width(elseE));
  if (isTrue(cond)) return thenE;
  if (isFalse(cond)) return elseE;
  if (thenE == elseE) return thenE;
  // Push negated conditions through by swapping the arms.
  if (node(cond).kind == ExprKind::kBNot) {
    return ite(ExprRef{node(cond).a}, elseE, thenE);
  }
  if (isBool(thenE)) {
    if (isTrue(thenE) && isFalse(elseE)) return cond;
    if (isFalse(thenE) && isTrue(elseE)) return bNot(cond);
    if (isTrue(thenE)) return bOr(cond, elseE);
    if (isFalse(thenE)) return bAnd(bNot(cond), elseE);
    if (isTrue(elseE)) return bOr(bNot(cond), thenE);
    if (isFalse(elseE)) return bAnd(cond, thenE);
  }
  // Collapse nested ites that repeat the same condition: the inner branch on
  // the same guard is unreachable on one side.
  if (node(thenE).kind == ExprKind::kIte && node(thenE).a == cond.id) {
    return ite(cond, ExprRef{node(thenE).b}, elseE);
  }
  if (node(elseE).kind == ExprKind::kIte && node(elseE).a == cond.id) {
    return ite(cond, thenE, ExprRef{node(elseE).c});
  }
  return intern({ExprKind::kIte, width(thenE), cond.id, thenE.id, elseE.id});
}

bool ExprArena::isComplement(ExprRef r, ExprRef o) const {
  const ExprNode& rn = node(r);
  const ExprNode& on = node(o);
  if (rn.width == 0) {
    return (rn.kind == ExprKind::kBNot && rn.a == o.id) ||
           (on.kind == ExprKind::kBNot && on.a == r.id);
  }
  return (rn.kind == ExprKind::kNot && rn.a == o.id) ||
         (on.kind == ExprKind::kNot && on.a == r.id);
}

}  // namespace flay::expr
