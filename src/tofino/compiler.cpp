#include "tofino/compiler.h"

#include <algorithm>
#include <random>

namespace flay::tofino {

namespace {

/// Dependency kinds between units, RMT-style.
enum class Dep : uint8_t {
  kNone,
  kAction,  // write/write or read-after-write within actions: >= stage
  kMatch,   // earlier unit writes a field the later one matches/reads:
            // strictly later stage
};

struct DepGraph {
  // dep[i][j] for i < j: constraint of unit j on unit i.
  std::vector<std::vector<Dep>> dep;
};

bool intersects(const std::set<std::string>& a,
                const std::set<std::string>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia == *ib) return true;
    if (*ia < *ib) ++ia;
    else ++ib;
  }
  return false;
}

DepGraph buildDeps(const std::vector<Unit>& units) {
  DepGraph g;
  size_t n = units.size();
  g.dep.assign(n, std::vector<Dep>(n, Dep::kNone));
  for (size_t j = 0; j < n; ++j) {
    for (size_t i = 0; i < j; ++i) {
      Dep d = Dep::kNone;
      // RAW: i writes what j reads -> j must match strictly later.
      if (intersects(units[i].writes, units[j].reads)) d = Dep::kMatch;
      // WAW / WAR: ordering within the same stage is fine on RMT (actions
      // execute at stage end in order), but keep them ordered.
      else if (intersects(units[i].writes, units[j].writes) ||
               intersects(units[i].reads, units[j].writes)) {
        d = Dep::kAction;
      }
      g.dep[i][j] = d;
    }
    // Control dependency: gateway predicate must resolve before the body.
    for (size_t gw : units[j].controlDeps) {
      g.dep[gw][j] = Dep::kMatch;
    }
  }
  return g;
}

struct Placement {
  bool ok = false;
  std::vector<uint32_t> stageOf;  // unit -> stage (1-based)
  uint32_t stages = 0;
};

struct StageLoad {
  uint32_t sram = 0;
  uint32_t tcam = 0;
  uint32_t alu = 0;
  uint32_t tables = 0;
};

/// Greedy placement honoring dependencies and per-stage resources, visiting
/// units in `order` (a permutation respecting program order constraints is
/// not required: stage lower bounds enforce correctness).
Placement greedyPlace(const std::vector<Unit>& units, const DepGraph& deps,
                      const PipelineModel& model,
                      const std::vector<size_t>& order) {
  Placement p;
  p.stageOf.assign(units.size(), 0);
  std::vector<StageLoad> load(model.numStages + 1);

  for (size_t idx : order) {
    const Unit& u = units[idx];
    uint32_t minStage = 1;
    for (size_t i = 0; i < units.size(); ++i) {
      if (p.stageOf[i] == 0) continue;
      Dep d = i < idx ? deps.dep[i][idx] : deps.dep[idx][i];
      if (d == Dep::kNone) continue;
      if (i < idx) {
        // i precedes idx.
        uint32_t bound = d == Dep::kMatch ? p.stageOf[i] + 1 : p.stageOf[i];
        minStage = std::max(minStage, bound);
      } else {
        // idx precedes i, but i was placed first: idx must come no later.
        // Greedy fallback: allow equality for action deps, earlier for
        // match deps; if impossible the attempt fails below.
        uint32_t cap = d == Dep::kMatch ? p.stageOf[i] - 1 : p.stageOf[i];
        if (minStage > cap) {
          // contradiction; force failure by requiring an absurd stage
          minStage = model.numStages + 1;
        }
      }
    }
    bool placed = false;
    for (uint32_t s = minStage; s <= model.numStages; ++s) {
      // Re-check caps from successors already placed.
      bool capOk = true;
      for (size_t i = idx + 1; i < units.size(); ++i) {
        if (p.stageOf[i] == 0) continue;
        Dep d = deps.dep[idx][i];
        if (d == Dep::kMatch && s >= p.stageOf[i]) capOk = false;
        if (d == Dep::kAction && s > p.stageOf[i]) capOk = false;
      }
      if (!capOk) continue;
      StageLoad& l = load[s];
      uint32_t tableSlots = u.kind == Unit::Kind::kAlu ? 0 : 1;
      if (l.sram + u.sramBlocks > model.sramBlocksPerStage) continue;
      if (l.tcam + u.tcamBlocks > model.tcamBlocksPerStage) continue;
      if (l.alu + u.aluOps > model.aluPerStage) continue;
      if (l.tables + tableSlots > model.logicalTablesPerStage) continue;
      l.sram += u.sramBlocks;
      l.tcam += u.tcamBlocks;
      l.alu += u.aluOps;
      l.tables += tableSlots;
      p.stageOf[idx] = s;
      p.stages = std::max(p.stages, s);
      placed = true;
      break;
    }
    if (!placed) return p;  // ok stays false
  }
  p.ok = true;
  return p;
}

}  // namespace

CompileResult PipelineCompiler::place(
    const ProgramRequirements& requirements) const {
  auto start = std::chrono::steady_clock::now();
  CompileResult result;

  if (requirements.phvBits > model_.phvBits) {
    result.error = "PHV overflow: program needs " +
                   std::to_string(requirements.phvBits) + " bits, model has " +
                   std::to_string(model_.phvBits);
    result.phvBitsUsed = requirements.phvBits;
    result.compileTime = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start);
    return result;
  }

  const std::vector<Unit>& units = requirements.units;
  DepGraph deps = buildDeps(units);

  std::vector<size_t> order(units.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  // Randomized-restart search: program order first, then shuffled orders;
  // keep the fewest-stages feasible placement. The iteration budget makes
  // compile time scale with program size, like a production device
  // compiler's optimization passes.
  std::mt19937_64 rng(options_.seed);
  Placement best;
  for (uint32_t iter = 0; iter < options_.searchIterations; ++iter) {
    Placement p = greedyPlace(units, deps, model_, order);
    if (p.ok && (!best.ok || p.stages < best.stages)) best = p;
    std::shuffle(order.begin(), order.end(), rng);
  }

  result.compileTime = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  result.phvBitsUsed = requirements.phvBits;
  if (!best.ok) {
    result.error = "placement failed: pipeline resources exhausted";
    return result;
  }
  result.fits = true;
  result.stagesUsed = best.stages;
  result.stageAssignment.assign(best.stages, {});
  for (size_t i = 0; i < units.size(); ++i) {
    result.stageAssignment[best.stageOf[i] - 1].push_back(units[i].name);
    result.sramBlocksUsed += units[i].sramBlocks;
    result.tcamBlocksUsed += units[i].tcamBlocks;
    result.aluOpsUsed += units[i].aluOps;
    if (units[i].kind != Unit::Kind::kAlu) ++result.logicalTables;
  }
  return result;
}

CompileResult PipelineCompiler::compile(
    const p4::CheckedProgram& checked) const {
  auto start = std::chrono::steady_clock::now();
  ProgramRequirements requirements = computeRequirements(checked, model_);
  CompileResult result = place(requirements);
  // Attribute requirement extraction to the compile as well.
  result.compileTime = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  return result;
}

}  // namespace flay::tofino
