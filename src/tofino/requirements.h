#ifndef FLAY_TOFINO_REQUIREMENTS_H
#define FLAY_TOFINO_REQUIREMENTS_H

#include <set>
#include <string>
#include <vector>

#include "p4/typecheck.h"
#include "tofino/model.h"

namespace flay::tofino {

/// One placeable unit of the pipeline: a match-action table, a gateway (an
/// if-condition compiled to a predicate table), or a standalone ALU bundle
/// (top-level assignments / extern ops between tables).
struct Unit {
  enum class Kind { kTable, kGateway, kAlu };
  Kind kind = Kind::kTable;
  std::string name;  // qualified: "Ingress.fwd", "Ingress.if@12", ...

  // Memory demand.
  bool needsTcam = false;
  uint32_t keyBits = 0;
  uint32_t entries = 0;
  uint32_t sramBlocks = 0;
  uint32_t tcamBlocks = 0;

  // Compute demand.
  uint32_t aluOps = 0;

  // Data dependencies (canonical field names).
  std::set<std::string> reads;
  std::set<std::string> writes;

  // Control dependency: unit indices that must be placed strictly earlier
  // (enclosing gateways).
  std::vector<size_t> controlDeps;
};

/// Everything the placement compiler needs about a program.
struct ProgramRequirements {
  std::vector<Unit> units;  // in program order
  /// PHV demand: bits of every header/metadata field the program touches,
  /// plus one bit per header validity flag.
  uint32_t phvBits = 0;
  /// Parser state count (contributes fixed overhead, reported not placed).
  uint32_t parserStates = 0;
};

/// Extracts placement requirements from a checked program under a resource
/// model (block geometry determines block counts).
ProgramRequirements computeRequirements(const p4::CheckedProgram& checked,
                                        const PipelineModel& model);

}  // namespace flay::tofino

#endif  // FLAY_TOFINO_REQUIREMENTS_H
