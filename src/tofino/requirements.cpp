#include "tofino/requirements.h"

namespace flay::tofino {

using p4::Expr;
using p4::ExprOp;
using p4::Stmt;
using p4::StmtOp;

namespace {

/// Collects canonical field names read by an expression. Locals/params are
/// intra-stage wires, not PHV fields, and are skipped.
void collectReads(const Expr& e, std::set<std::string>& out) {
  if (e.op == ExprOp::kPath && e.pathKind == p4::PathKind::kField) {
    out.insert(e.canonical);
  }
  if (e.op == ExprOp::kIsValid) out.insert(e.canonical + ".$valid");
  if (e.a) collectReads(*e.a, out);
  if (e.b) collectReads(*e.b, out);
  if (e.c) collectReads(*e.c, out);
}

class RequirementsBuilder {
 public:
  RequirementsBuilder(const p4::CheckedProgram& checked,
                      const PipelineModel& model)
      : checked_(checked), model_(model) {}

  ProgramRequirements build() {
    const p4::Program& prog = checked_.program;
    for (const auto& name : prog.pipeline.controlNames) {
      const p4::ControlDecl* control = prog.findControl(name);
      control_ = control;
      walkStmts(control->applyBody, /*enclosingGateways=*/{});
      flushAluBundle({});
    }
    computePhv();
    const p4::ParserDecl* parser = prog.findParser(prog.pipeline.parserName);
    if (parser != nullptr) {
      result_.parserStates = static_cast<uint32_t>(parser->states.size());
    }
    return std::move(result_);
  }

 private:
  void walkStmts(const std::vector<p4::StmtPtr>& stmts,
                 std::vector<size_t> enclosingGateways) {
    for (const auto& s : stmts) walkStmt(*s, enclosingGateways);
  }

  void walkStmt(const Stmt& stmt, std::vector<size_t> enclosingGateways) {
    switch (stmt.op) {
      case StmtOp::kApply: {
        flushAluBundle(enclosingGateways);
        addTableUnit(*control_->findTable(stmt.target), enclosingGateways);
        return;
      }
      case StmtOp::kIf: {
        flushAluBundle(enclosingGateways);
        size_t gw = addGatewayUnit(stmt, enclosingGateways);
        auto inner = enclosingGateways;
        inner.push_back(gw);
        walkStmts(stmt.thenBody, inner);
        flushAluBundle(inner);
        walkStmts(stmt.elseBody, inner);
        flushAluBundle(inner);
        return;
      }
      case StmtOp::kAssign:
        pendingAlu_.push_back(&stmt);
        return;
      case StmtOp::kActionCall: {
        // Direct action calls contribute their body's ALU work.
        const p4::ActionDecl* action = control_->findAction(stmt.target);
        if (action != nullptr) {
          for (const auto& s : action->body) {
            if (s->op == StmtOp::kAssign || s->op == StmtOp::kMarkToDrop) {
              pendingAlu_.push_back(s.get());
            }
          }
        }
        return;
      }
      case StmtOp::kMarkToDrop:
      case StmtOp::kRegRead:
      case StmtOp::kRegWrite:
      case StmtOp::kCountCall:
      case StmtOp::kMeterCall:
      case StmtOp::kSetValid:
      case StmtOp::kSetInvalid:
        pendingAlu_.push_back(&stmt);
        return;
      case StmtOp::kVarDecl:
        if (stmt.rhs != nullptr) pendingAlu_.push_back(&stmt);
        return;
      case StmtOp::kExit:
        return;
      default:
        return;
    }
  }

  /// Consecutive top-level scalar operations bundle into one ALU unit.
  void flushAluBundle(const std::vector<size_t>& enclosingGateways) {
    if (pendingAlu_.empty()) return;
    Unit u;
    u.kind = Unit::Kind::kAlu;
    u.name = control_->name + ".alu@" +
             std::to_string(pendingAlu_.front()->loc.line);
    for (const Stmt* s : pendingAlu_) {
      ++u.aluOps;
      if (s->rhs) collectReads(*s->rhs, u.reads);
      if (s->index) collectReads(*s->index, u.reads);
      if (s->cond) collectReads(*s->cond, u.reads);
      if (s->lhs != nullptr) {
        const Expr* target =
            s->lhs->op == ExprOp::kSlice ? s->lhs->a.get() : s->lhs.get();
        if (target->pathKind == p4::PathKind::kField) {
          u.writes.insert(target->canonical);
          if (s->lhs->op == ExprOp::kSlice) u.reads.insert(target->canonical);
        }
        if (s->op == StmtOp::kSetValid || s->op == StmtOp::kSetInvalid) {
          u.writes.insert(s->lhs->canonical + ".$valid");
        }
        if (s->op == StmtOp::kRegRead || s->op == StmtOp::kMeterCall) {
          // Destination of the read.
          if (target->pathKind == p4::PathKind::kField) {
            u.writes.insert(target->canonical);
          }
        }
      }
      if (s->op == StmtOp::kMarkToDrop) u.writes.insert("sm.egress_spec");
    }
    u.controlDeps = enclosingGateways;
    pendingAlu_.clear();
    result_.units.push_back(std::move(u));
  }

  size_t addGatewayUnit(const Stmt& stmt,
                        const std::vector<size_t>& enclosingGateways) {
    Unit u;
    u.kind = Unit::Kind::kGateway;
    u.name = control_->name + ".if@" + std::to_string(stmt.loc.line);
    collectReads(*stmt.cond, u.reads);
    u.controlDeps = enclosingGateways;
    result_.units.push_back(std::move(u));
    return result_.units.size() - 1;
  }

  void addTableUnit(const p4::TableDecl& table,
                    const std::vector<size_t>& enclosingGateways) {
    Unit u;
    u.kind = Unit::Kind::kTable;
    u.name = control_->name + "." + table.name;
    u.entries = table.size;
    for (const auto& k : table.keys) {
      u.keyBits += k.expr->width;
      collectReads(*k.expr, u.reads);
      // Ternary keys need TCAM; lpm compiles to SRAM-based algorithmic LPM
      // (the ALPM route production compilers take for large route tables).
      u.needsTcam |= k.matchKind == p4::MatchKind::kTernary;
    }
    uint32_t actionDataBits = 0;
    for (const auto& actionName : table.actionNames) {
      const p4::ActionDecl* action = control_->findAction(actionName);
      if (action == nullptr) continue;
      uint32_t paramBits = 0;
      for (const auto& p : action->params) paramBits += p.width;
      actionDataBits = std::max(actionDataBits, paramBits);
      for (const auto& s : action->body) collectActionEffects(*s, u);
    }
    // SRAM demand: entry storage (key for exact tables + action data +
    // ~16b overhead per entry), plus action-data storage for TCAM tables.
    uint32_t bitsPerEntry = actionDataBits + 16;
    if (!u.needsTcam) bitsPerEntry += u.keyBits;
    uint64_t sramBits = static_cast<uint64_t>(bitsPerEntry) * u.entries;
    u.sramBlocks = static_cast<uint32_t>(
        (sramBits + model_.sramBlockBits - 1) / model_.sramBlockBits);
    if (u.needsTcam) {
      uint32_t wide =
          (u.keyBits + model_.tcamBlockWidth - 1) / model_.tcamBlockWidth;
      uint32_t deep =
          (u.entries + model_.tcamBlockDepth - 1) / model_.tcamBlockDepth;
      u.tcamBlocks = std::max(1u, wide * deep);
    }
    u.controlDeps = enclosingGateways;
    result_.units.push_back(std::move(u));
  }

  void collectActionEffects(const Stmt& s, Unit& u) {
    ++u.aluOps;
    if (s.rhs) collectReads(*s.rhs, u.reads);
    if (s.cond) collectReads(*s.cond, u.reads);
    if (s.lhs != nullptr) {
      const Expr* target =
          s.lhs->op == ExprOp::kSlice ? s.lhs->a.get() : s.lhs.get();
      if (target->pathKind == p4::PathKind::kField) {
        u.writes.insert(target->canonical);
      }
    }
    if (s.op == StmtOp::kMarkToDrop) u.writes.insert("sm.egress_spec");
    for (const auto& inner : s.thenBody) collectActionEffects(*inner, u);
    for (const auto& inner : s.elseBody) collectActionEffects(*inner, u);
  }

  /// PHV demand: every field any unit touches plus extracted headers.
  void computePhv() {
    std::set<std::string> touched;
    for (const auto& u : result_.units) {
      touched.insert(u.reads.begin(), u.reads.end());
      touched.insert(u.writes.begin(), u.writes.end());
    }
    // Extracted/emitted headers occupy PHV whether or not controls read
    // them — that is exactly the waste parser-tail pruning recovers (§3).
    const p4::Program& prog = checked_.program;
    const p4::ParserDecl* parser = prog.findParser(prog.pipeline.parserName);
    if (parser != nullptr) {
      for (const auto& st : parser->states) {
        for (const auto& s : st.body) {
          if (s->op == StmtOp::kExtract) {
            const p4::HeaderInstance* h =
                checked_.env.findHeader(s->lhs->canonical);
            for (const auto& f : h->fieldCanonicals) touched.insert(f);
            touched.insert(h->validityCanonical);
          }
        }
      }
    }
    uint32_t bits = 0;
    for (const auto& name : touched) {
      const p4::FieldInfo* f = checked_.env.findField(name);
      if (f != nullptr) bits += f->isBool ? 1 : f->width;
    }
    result_.phvBits = bits;
  }

  const p4::CheckedProgram& checked_;
  const PipelineModel& model_;
  ProgramRequirements result_;
  const p4::ControlDecl* control_ = nullptr;
  std::vector<const Stmt*> pendingAlu_;
};

}  // namespace

ProgramRequirements computeRequirements(const p4::CheckedProgram& checked,
                                        const PipelineModel& model) {
  return RequirementsBuilder(checked, model).build();
}

}  // namespace flay::tofino
