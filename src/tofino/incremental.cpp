#include "tofino/incremental.h"

#include <algorithm>
#include <chrono>

#include "obs/obs.h"

namespace flay::tofino {

namespace {

/// Telemetry for the §6 prototype: how much of the pipeline each
/// semantics-changing update actually forces the device compiler to touch.
struct IncrementalObs {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& compiles = reg.counter("tofino.incremental_compiles");
  obs::Counter& fullFallbacks = reg.counter("tofino.full_fallbacks");
  obs::Counter& unitsReplaced = reg.counter("tofino.units_replaced");
  obs::Histogram& compileUs = reg.histogram("tofino.incremental_us");
  obs::Histogram& stagesTouched = reg.histogram("tofino.stages_touched");

  static IncrementalObs& get() {
    static IncrementalObs instance;
    return instance;
  }
};

bool intersects(const std::set<std::string>& a,
                const std::set<std::string>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia == *ib) return true;
    if (*ia < *ib) ++ia;
    else ++ib;
  }
  return false;
}

}  // namespace

CompileResult IncrementalPipelineCompiler::fullCompile(
    const p4::CheckedProgram& checked) {
  CompileResult result = full_.compile(checked);
  baseline_.clear();
  if (result.fits) {
    for (size_t s = 0; s < result.stageAssignment.size(); ++s) {
      for (const auto& name : result.stageAssignment[s]) {
        baseline_[name] = static_cast<uint32_t>(s + 1);
      }
    }
  }
  lastReplaced_ = 0;
  lastFullFallback_ = false;
  return result;
}

CompileResult IncrementalPipelineCompiler::incrementalCompile(
    const p4::CheckedProgram& checked, const std::set<std::string>& changed) {
  IncrementalObs& iobs = IncrementalObs::get();
  obs::ScopedTimer compileTimer(iobs.compileUs, "tofino.incremental");
  iobs.compiles.add(1);
  auto start = std::chrono::steady_clock::now();
  lastFullFallback_ = false;
  if (baseline_.empty()) {
    CompileResult r = fullCompile(checked);
    lastFullFallback_ = true;  // set after fullCompile resets the flags
    iobs.fullFallbacks.add(1);
    return r;
  }

  ProgramRequirements req = computeRequirements(checked, model_);
  CompileResult result;
  result.phvBitsUsed = req.phvBits;
  if (req.phvBits > model_.phvBits) {
    result.error = "PHV overflow";
    return result;
  }

  // Partition units: pinned (unchanged, present in baseline) vs movable.
  const size_t n = req.units.size();
  std::set<size_t> movableSet;
  for (size_t i = 0; i < n; ++i) {
    const Unit& u = req.units[i];
    if (baseline_.count(u.name) == 0 || changed.count(u.name) != 0) {
      movableSet.insert(i);
    }
  }

  struct Load {
    uint32_t sram = 0, tcam = 0, alu = 0, tables = 0;
  };

  // Dependency classification between unit i (earlier in program order when
  // i < j) and j.
  auto depBounds = [&](size_t idx, size_t j, const std::vector<uint32_t>& st,
                       uint32_t& minStage, uint32_t& maxStage) {
    const Unit& u = req.units[idx];
    const Unit& other = req.units[j];
    bool jBefore = j < idx;
    bool matchDep = jBefore ? intersects(other.writes, u.reads)
                            : intersects(u.writes, other.reads);
    bool actionDep = intersects(other.writes, u.writes) ||
                     (jBefore ? intersects(other.reads, u.writes)
                              : intersects(u.reads, other.writes));
    for (size_t gw : u.controlDeps) {
      if (gw == j && jBefore) matchDep = true;
    }
    for (size_t gw : other.controlDeps) {
      if (gw == idx && !jBefore) matchDep = true;
    }
    if (jBefore) {
      if (matchDep) minStage = std::max(minStage, st[j] + 1);
      else if (actionDep) minStage = std::max(minStage, st[j]);
    } else {
      if (matchDep) maxStage = std::min(maxStage, st[j] - 1);
      else if (actionDep) maxStage = std::min(maxStage, st[j]);
    }
  };

  // Attempt placement against the pinned skeleton. When a movable unit
  // cannot be placed, unpin every pinned unit that constrains it and retry:
  // the re-placed region grows until the change fits (constraint-driven
  // unpinning) or everything is movable.
  std::vector<uint32_t> stageOf;
  constexpr int kMaxRetries = 12;
  bool ok = false;
  for (int attempt = 0; attempt < kMaxRetries && !ok; ++attempt) {
    stageOf.assign(n, 0);
    std::vector<Load> load(model_.numStages + 1);
    for (size_t i = 0; i < n; ++i) {
      if (movableSet.count(i) != 0) continue;
      stageOf[i] = baseline_.at(req.units[i].name);
      Load& l = load[stageOf[i]];
      l.sram += req.units[i].sramBlocks;
      l.tcam += req.units[i].tcamBlocks;
      l.alu += req.units[i].aluOps;
      l.tables += req.units[i].kind == Unit::Kind::kAlu ? 0 : 1;
    }
    ok = true;
    for (size_t idx : movableSet) {
      const Unit& u = req.units[idx];
      uint32_t minStage = 1;
      uint32_t maxStage = model_.numStages;
      for (size_t j = 0; j < n; ++j) {
        if (j != idx && stageOf[j] != 0) {
          depBounds(idx, j, stageOf, minStage, maxStage);
        }
      }
      bool placed = false;
      for (uint32_t s = minStage; s <= maxStage && s <= model_.numStages;
           ++s) {
        Load& l = load[s];
        uint32_t slots = u.kind == Unit::Kind::kAlu ? 0 : 1;
        if (l.sram + u.sramBlocks > model_.sramBlocksPerStage) continue;
        if (l.tcam + u.tcamBlocks > model_.tcamBlocksPerStage) continue;
        if (l.alu + u.aluOps > model_.aluPerStage) continue;
        if (l.tables + slots > model_.logicalTablesPerStage) continue;
        l.sram += u.sramBlocks;
        l.tcam += u.tcamBlocks;
        l.alu += u.aluOps;
        l.tables += slots;
        stageOf[idx] = s;
        placed = true;
        break;
      }
      if (placed) continue;
      // Unpin the neighbours that constrain this unit and retry.
      ok = false;
      size_t before = movableSet.size();
      for (size_t j = 0; j < n; ++j) {
        if (j == idx || movableSet.count(j) != 0) continue;
        const Unit& other = req.units[j];
        bool related = intersects(other.writes, u.reads) ||
                       intersects(u.writes, other.reads) ||
                       intersects(other.writes, u.writes) ||
                       intersects(other.reads, u.writes) ||
                       intersects(u.reads, other.writes);
        for (size_t gw : u.controlDeps) related |= gw == j;
        for (size_t gw : other.controlDeps) related |= gw == idx;
        if (related) movableSet.insert(j);
      }
      if (movableSet.size() == before) {
        // Nothing left to unpin: give up on incrementality.
        attempt = kMaxRetries;
      }
      break;
    }
  }
  lastReplaced_ = movableSet.size();
  iobs.unitsReplaced.add(movableSet.size());

  if (!ok) {
    // Constraints broke beyond local repair: monolithic fallback.
    CompileResult fullResult = fullCompile(checked);
    lastFullFallback_ = true;
    iobs.fullFallbacks.add(1);
    fullResult.compileTime =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start);
    return fullResult;
  }

  // How localized was the change: distinct stages that received a re-placed
  // unit (the incrementality claim is that this stays small).
  std::set<uint32_t> touched;
  for (size_t idx : movableSet) touched.insert(stageOf[idx]);
  iobs.stagesTouched.record(touched.size());

  result.fits = true;
  uint32_t stages = 0;
  for (size_t i = 0; i < n; ++i) stages = std::max(stages, stageOf[i]);
  result.stagesUsed = stages;
  result.stageAssignment.assign(stages, {});
  for (size_t i = 0; i < n; ++i) {
    result.stageAssignment[stageOf[i] - 1].push_back(req.units[i].name);
    result.sramBlocksUsed += req.units[i].sramBlocks;
    result.tcamBlocksUsed += req.units[i].tcamBlocks;
    result.aluOpsUsed += req.units[i].aluOps;
    if (req.units[i].kind != Unit::Kind::kAlu) ++result.logicalTables;
  }
  // Refresh the baseline to the new placement.
  baseline_.clear();
  for (size_t i = 0; i < n; ++i) baseline_[req.units[i].name] = stageOf[i];
  result.compileTime = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  return result;
}

}  // namespace flay::tofino
