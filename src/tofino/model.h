#ifndef FLAY_TOFINO_MODEL_H
#define FLAY_TOFINO_MODEL_H

#include <cstdint>

namespace flay::tofino {

/// Resource parameters of an RMT-style match-action pipeline, defaulted to
/// Tofino-2-like values (public figures; the real device is proprietary).
/// The absolute numbers matter less than the *relative* pressure they put on
/// placement — the paper's §4.2 result is a stage-count delta.
struct PipelineModel {
  uint32_t numStages = 20;

  // Per-stage memory.
  uint32_t sramBlocksPerStage = 80;
  uint32_t sramBlockBits = 128 * 1024;  // 16 KB blocks
  uint32_t tcamBlocksPerStage = 48;
  uint32_t tcamBlockWidth = 44;   // bits of match per block
  uint32_t tcamBlockDepth = 512;  // entries per block

  // Per-stage compute.
  uint32_t aluPerStage = 48;          // action units (field writes)
  uint32_t logicalTablesPerStage = 16;  // incl. gateways

  // Whole-pipeline packet header vector budget.
  uint32_t phvBits = 4096;

  /// A smaller profile for stress tests and crossover experiments.
  static PipelineModel small() {
    PipelineModel m;
    m.numStages = 12;
    m.sramBlocksPerStage = 32;
    m.tcamBlocksPerStage = 8;
    m.aluPerStage = 16;
    m.logicalTablesPerStage = 8;
    m.phvBits = 2048;
    return m;
  }
};

}  // namespace flay::tofino

#endif  // FLAY_TOFINO_MODEL_H
