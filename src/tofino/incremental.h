#ifndef FLAY_TOFINO_INCREMENTAL_H
#define FLAY_TOFINO_INCREMENTAL_H

#include <map>
#include <set>

#include "tofino/compiler.h"

namespace flay::tofino {

/// Prototype of the paper's first future-work direction (§6): a device
/// compiler that does NOT treat the program as a monolithic unit. After a
/// full baseline compile, `incrementalCompile` re-places only the units
/// belonging to changed components (plus any unit whose constraints broke),
/// pinning everything else to its previous stage. Placement cost then
/// scales with the size of the change, not the program.
class IncrementalPipelineCompiler {
 public:
  explicit IncrementalPipelineCompiler(PipelineModel model = {},
                                       CompilerOptions options = {})
      : full_(model, options), model_(model) {}

  /// Whole-program compile; establishes the pinned baseline placement.
  CompileResult fullCompile(const p4::CheckedProgram& checked);

  /// Recompiles after a change confined to `changedComponents` (qualified
  /// unit names, e.g. "Ingress.fwd"). Units absent from the baseline (newly
  /// appearing after respecialization) are also re-placed. Falls back to a
  /// full compile when pinning is infeasible.
  CompileResult incrementalCompile(const p4::CheckedProgram& checked,
                                   const std::set<std::string>& changed);

  /// True once a baseline exists.
  bool hasBaseline() const { return !baseline_.empty(); }
  /// Units re-placed by the last incrementalCompile call.
  size_t lastReplacedUnits() const { return lastReplaced_; }
  bool lastFellBackToFull() const { return lastFullFallback_; }

 private:
  PipelineCompiler full_;
  PipelineModel model_;
  std::map<std::string, uint32_t> baseline_;  // unit name -> stage (1-based)
  size_t lastReplaced_ = 0;
  bool lastFullFallback_ = false;
};

}  // namespace flay::tofino

#endif  // FLAY_TOFINO_INCREMENTAL_H
