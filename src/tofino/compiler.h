#ifndef FLAY_TOFINO_COMPILER_H
#define FLAY_TOFINO_COMPILER_H

#include <chrono>
#include <string>
#include <vector>

#include "tofino/requirements.h"

namespace flay::tofino {

/// Result of placing a program onto the pipeline.
struct CompileResult {
  bool fits = false;
  std::string error;

  uint32_t stagesUsed = 0;
  uint32_t sramBlocksUsed = 0;
  uint32_t tcamBlocksUsed = 0;
  uint32_t aluOpsUsed = 0;
  uint32_t phvBitsUsed = 0;
  uint32_t logicalTables = 0;

  /// Unit names per stage (index 0 = stage 1).
  std::vector<std::vector<std::string>> stageAssignment;

  /// Wall-clock time of the whole compile, including the placement search —
  /// the quantity Tables 1 and 2 report.
  std::chrono::microseconds compileTime{0};
};

struct CompilerOptions {
  /// Randomized-restart budget for the placement search. The search is the
  /// dominant cost, so compile time scales with program size times this,
  /// mimicking the heavyweight optimization passes of production device
  /// compilers (bf-p4c). Deterministic for a fixed seed.
  uint32_t searchIterations = 400;
  uint64_t seed = 0xF1A7;
};

/// A monolithic whole-program device compiler for the RMT pipeline model:
/// dependency analysis + greedy stage placement wrapped in a randomized
/// restart search that minimizes stage count. This is the "device-specific
/// compiler" of Fig. 2 that Flay invokes only when semantics changed.
class PipelineCompiler {
 public:
  explicit PipelineCompiler(PipelineModel model = {}, CompilerOptions options = {})
      : model_(model), options_(options) {}

  CompileResult compile(const p4::CheckedProgram& checked) const;
  /// Lower-level entry point when requirements are precomputed.
  CompileResult place(const ProgramRequirements& requirements) const;

  const PipelineModel& model() const { return model_; }

 private:
  PipelineModel model_;
  CompilerOptions options_;
};

}  // namespace flay::tofino

#endif  // FLAY_TOFINO_COMPILER_H
