#ifndef FLAY_SUPPORT_DIAGNOSTICS_H
#define FLAY_SUPPORT_DIAGNOSTICS_H

#include <stdexcept>
#include <string>
#include <vector>

namespace flay {

/// Position within a source file, 1-based. Line 0 means "unknown".
struct SourceLoc {
  uint32_t line = 0;
  uint32_t column = 0;

  std::string toString() const {
    if (line == 0) return "<unknown>";
    return std::to_string(line) + ":" + std::to_string(column);
  }
};

enum class Severity { kWarning, kError };

struct Diagnostic {
  Severity severity = Severity::kError;
  SourceLoc loc;
  std::string message;

  std::string toString() const {
    std::string s = loc.toString();
    s += severity == Severity::kError ? ": error: " : ": warning: ";
    s += message;
    return s;
  }
};

/// Thrown for unrecoverable front-end failures (parse/type errors when the
/// caller asked for throw-on-error behaviour).
class CompileError : public std::runtime_error {
 public:
  explicit CompileError(const std::string& what) : std::runtime_error(what) {}
};

/// Collects diagnostics during a front-end pass. Errors are recorded rather
/// than thrown so a pass can report several problems at once; callers check
/// hasErrors() at phase boundaries.
class DiagnosticEngine {
 public:
  void error(SourceLoc loc, std::string message) {
    diags_.push_back({Severity::kError, loc, std::move(message)});
  }
  void warning(SourceLoc loc, std::string message) {
    diags_.push_back({Severity::kWarning, loc, std::move(message)});
  }

  bool hasErrors() const {
    for (const auto& d : diags_) {
      if (d.severity == Severity::kError) return true;
    }
    return false;
  }

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }

  /// All diagnostics joined with newlines, for error messages and logs.
  std::string summary() const {
    std::string s;
    for (const auto& d : diags_) {
      if (!s.empty()) s += '\n';
      s += d.toString();
    }
    return s;
  }

  /// Throws CompileError if any error has been recorded.
  void throwIfErrors() const {
    if (hasErrors()) throw CompileError(summary());
  }

 private:
  std::vector<Diagnostic> diags_;
};

}  // namespace flay

#endif  // FLAY_SUPPORT_DIAGNOSTICS_H
