#include "support/thread_pool.h"

#include <stdexcept>

namespace flay::support {

namespace {

/// The pool whose drainQueue() this thread is currently inside, if any.
/// Tracks reentrancy for workers AND for run() callers helping to drain;
/// saved/restored so nesting across distinct pools keeps working.
thread_local const ThreadPool* currentlyDraining = nullptr;

}  // namespace

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::workerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (stopping_ && queue_.empty()) return;
    drainQueue(lock);
  }
}

void ThreadPool::drainQueue(std::unique_lock<std::mutex>& lock) {
  while (!queue_.empty()) {
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    const ThreadPool* outer = currentlyDraining;
    currentlyDraining = this;
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    currentlyDraining = outer;
    lock.lock();
    if (error != nullptr && firstError_ == nullptr) firstError_ = error;
    finishTask(lock);
  }
}

void ThreadPool::finishTask(std::unique_lock<std::mutex>&) {
  if (--pending_ == 0) done_.notify_all();
}

void ThreadPool::run(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (currentlyDraining == this) {
    // A task of this pool waiting on done_ could never observe pending_
    // reach zero: its own task is part of the count. This holds whether the
    // task runs on a worker or on a run() caller helping to drain — fail
    // fast instead of deadlocking.
    throw std::logic_error(
        "ThreadPool::run is not reentrant from inside one of its own tasks");
  }
  std::unique_lock<std::mutex> lock(mu_);
  pending_ += tasks.size();
  for (auto& t : tasks) queue_.push_back(std::move(t));
  wake_.notify_all();
  // The caller helps drain: a jobs=N engine gets N-way parallelism from
  // N-1 workers plus this thread, and a pool is never idle-blocked on its
  // own submitter.
  drainQueue(lock);
  done_.wait(lock, [this] { return pending_ == 0; });
  std::exception_ptr error = firstError_;
  firstError_ = nullptr;
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace flay::support
