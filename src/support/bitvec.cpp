#include "support/bitvec.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace flay {

BitVec::BitVec(uint32_t width, uint64_t value) : width_(width) {
  words_.assign(numWords(), 0);
  if (!words_.empty()) words_[0] = value;
  clamp();
}

BitVec BitVec::allOnes(uint32_t width) {
  BitVec v(width, 0);
  for (auto& w : v.words_) w = ~uint64_t{0};
  v.clamp();
  return v;
}

void BitVec::clamp() {
  if (width_ == 0 || words_.empty()) return;
  uint32_t topBits = width_ % kWordBits;
  if (topBits != 0) words_.back() &= (~uint64_t{0}) >> (kWordBits - topBits);
}

void BitVec::checkSameWidth(const BitVec& o) const {
  if (width_ != o.width_) {
    throw std::invalid_argument("BitVec width mismatch: " +
                                std::to_string(width_) + " vs " +
                                std::to_string(o.width_));
  }
}

BitVec BitVec::parse(uint32_t width, std::string_view text) {
  uint32_t base = 10;
  if (text.size() >= 2 && text[0] == '0') {
    char c = text[1];
    if (c == 'x' || c == 'X') { base = 16; text.remove_prefix(2); }
    else if (c == 'b' || c == 'B') { base = 2; text.remove_prefix(2); }
    else if (c == 'o' || c == 'O') { base = 8; text.remove_prefix(2); }
  }
  BitVec result(width, 0);
  BitVec baseVal(width, base);
  bool anyDigit = false;
  for (char c : text) {
    if (c == '_') continue;
    uint32_t digit;
    if (c >= '0' && c <= '9') digit = static_cast<uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<uint32_t>(c - 'a') + 10;
    else if (c >= 'A' && c <= 'F') digit = static_cast<uint32_t>(c - 'A') + 10;
    else throw std::invalid_argument("bad digit in bit-vector literal");
    if (digit >= base) throw std::invalid_argument("digit out of range for base");
    result = result.mul(baseVal).add(BitVec(width, digit));
    anyDigit = true;
  }
  if (!anyDigit) {
    throw std::invalid_argument("bit-vector literal has no digits");
  }
  return result;
}

bool BitVec::isZero() const {
  return std::all_of(words_.begin(), words_.end(),
                     [](uint64_t w) { return w == 0; });
}

bool BitVec::isAllOnes() const { return *this == allOnes(width_); }

bool BitVec::fitsUint64() const {
  for (size_t i = 1; i < words_.size(); ++i) {
    if (words_[i] != 0) return false;
  }
  return true;
}

uint64_t BitVec::toUint64() const { return words_.empty() ? 0 : words_[0]; }

bool BitVec::bit(uint32_t i) const {
  assert(i < width_);
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1;
}

uint32_t BitVec::countOnes() const {
  uint32_t n = 0;
  for (uint64_t w : words_) n += static_cast<uint32_t>(__builtin_popcountll(w));
  return n;
}

uint32_t BitVec::leadingOnes() const {
  uint32_t n = 0;
  for (uint32_t i = width_; i > 0; --i) {
    if (!bit(i - 1)) break;
    ++n;
  }
  return n;
}

bool BitVec::isPrefixMask() const {
  uint32_t ones = leadingOnes();
  // All remaining bits must be zero.
  return countOnes() == ones;
}

BitVec BitVec::add(const BitVec& o) const {
  checkSameWidth(o);
  BitVec r(width_, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    unsigned __int128 s = static_cast<unsigned __int128>(words_[i]) +
                          o.words_[i] + carry;
    r.words_[i] = static_cast<uint64_t>(s);
    carry = static_cast<uint64_t>(s >> kWordBits);
  }
  r.clamp();
  return r;
}

BitVec BitVec::sub(const BitVec& o) const { return add(o.neg()); }

BitVec BitVec::neg() const { return bitNot().add(BitVec(width_, width_ ? 1 : 0)); }

BitVec BitVec::mul(const BitVec& o) const {
  checkSameWidth(o);
  BitVec r(width_, 0);
  for (size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] == 0) continue;
    uint64_t carry = 0;
    for (size_t j = 0; i + j < r.words_.size(); ++j) {
      unsigned __int128 cur = static_cast<unsigned __int128>(words_[i]) *
                                  o.words_[j] +
                              r.words_[i + j] + carry;
      r.words_[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> kWordBits);
    }
  }
  r.clamp();
  return r;
}

BitVec BitVec::udiv(const BitVec& o) const {
  checkSameWidth(o);
  if (o.isZero()) return allOnes(width_);
  // Schoolbook restoring division over bits; widths are small in practice.
  BitVec quotient(width_, 0);
  BitVec remainder(width_, 0);
  for (uint32_t i = width_; i > 0; --i) {
    remainder = remainder.shl(1);
    if (bit(i - 1)) remainder.words_[0] |= 1;
    if (o.ule(remainder)) {
      remainder = remainder.sub(o);
      quotient.words_[(i - 1) / kWordBits] |= uint64_t{1} << ((i - 1) % kWordBits);
    }
  }
  return quotient;
}

BitVec BitVec::urem(const BitVec& o) const {
  checkSameWidth(o);
  if (o.isZero()) return *this;
  return sub(udiv(o).mul(o));
}

BitVec BitVec::bitAnd(const BitVec& o) const {
  checkSameWidth(o);
  BitVec r = *this;
  for (size_t i = 0; i < r.words_.size(); ++i) r.words_[i] &= o.words_[i];
  return r;
}

BitVec BitVec::bitOr(const BitVec& o) const {
  checkSameWidth(o);
  BitVec r = *this;
  for (size_t i = 0; i < r.words_.size(); ++i) r.words_[i] |= o.words_[i];
  return r;
}

BitVec BitVec::bitXor(const BitVec& o) const {
  checkSameWidth(o);
  BitVec r = *this;
  for (size_t i = 0; i < r.words_.size(); ++i) r.words_[i] ^= o.words_[i];
  return r;
}

BitVec BitVec::bitNot() const {
  BitVec r = *this;
  for (auto& w : r.words_) w = ~w;
  r.clamp();
  return r;
}

BitVec BitVec::shl(uint32_t amount) const {
  if (amount >= width_) return zero(width_);
  BitVec r(width_, 0);
  uint32_t wordShift = amount / kWordBits;
  uint32_t bitShift = amount % kWordBits;
  for (size_t i = words_.size(); i-- > wordShift;) {
    uint64_t v = words_[i - wordShift] << bitShift;
    if (bitShift != 0 && i > wordShift) {
      v |= words_[i - wordShift - 1] >> (kWordBits - bitShift);
    }
    r.words_[i] = v;
  }
  r.clamp();
  return r;
}

BitVec BitVec::lshr(uint32_t amount) const {
  if (amount >= width_) return zero(width_);
  BitVec r(width_, 0);
  uint32_t wordShift = amount / kWordBits;
  uint32_t bitShift = amount % kWordBits;
  for (size_t i = 0; i + wordShift < words_.size(); ++i) {
    uint64_t v = words_[i + wordShift] >> bitShift;
    if (bitShift != 0 && i + wordShift + 1 < words_.size()) {
      v |= words_[i + wordShift + 1] << (kWordBits - bitShift);
    }
    r.words_[i] = v;
  }
  return r;
}

bool BitVec::eq(const BitVec& o) const {
  checkSameWidth(o);
  return words_ == o.words_;
}

bool BitVec::ult(const BitVec& o) const {
  checkSameWidth(o);
  for (size_t i = words_.size(); i-- > 0;) {
    if (words_[i] != o.words_[i]) return words_[i] < o.words_[i];
  }
  return false;
}

bool BitVec::ule(const BitVec& o) const { return !o.ult(*this); }

BitVec BitVec::slice(uint32_t hi, uint32_t lo) const {
  assert(hi < width_ && lo <= hi);
  return lshr(lo).trunc(hi - lo + 1);
}

BitVec BitVec::zext(uint32_t newWidth) const {
  assert(newWidth >= width_);
  BitVec r(newWidth, 0);
  std::copy(words_.begin(), words_.end(), r.words_.begin());
  return r;
}

BitVec BitVec::trunc(uint32_t newWidth) const {
  assert(newWidth <= width_);
  BitVec r(newWidth, 0);
  std::copy_n(words_.begin(), r.words_.size(), r.words_.begin());
  r.clamp();
  return r;
}

BitVec BitVec::concat(const BitVec& low) const {
  BitVec hi = zext(width_ + low.width_).shl(low.width_);
  return hi.bitOr(low.zext(width_ + low.width_));
}

std::string BitVec::toHexString() const {
  uint32_t digits = std::max<uint32_t>(1, (width_ + 3) / 4);
  std::string s = "0x";
  s.reserve(2 + digits);
  static const char* kHex = "0123456789abcdef";
  for (uint32_t i = digits; i-- > 0;) {
    uint32_t bitPos = i * 4;
    uint64_t nibble = 0;
    if (bitPos < width_) {
      nibble = (words_[bitPos / kWordBits] >> (bitPos % kWordBits)) & 0xF;
      // A nibble straddling a word boundary pulls bits from the next word.
      uint32_t inWord = bitPos % kWordBits;
      if (inWord > kWordBits - 4 && bitPos / kWordBits + 1 < words_.size()) {
        nibble |= (words_[bitPos / kWordBits + 1] << (kWordBits - inWord)) & 0xF;
      }
    }
    s += kHex[nibble];
  }
  return s;
}

std::string BitVec::toDecimalString() const {
  if (isZero()) return "0";
  // Repeated division by 10 over a word copy.
  std::vector<uint64_t> w = words_;
  std::string digits;
  auto nonZero = [&w] {
    return std::any_of(w.begin(), w.end(), [](uint64_t x) { return x != 0; });
  };
  while (nonZero()) {
    uint64_t rem = 0;
    for (size_t i = w.size(); i-- > 0;) {
      unsigned __int128 cur = (static_cast<unsigned __int128>(rem) << 64) | w[i];
      w[i] = static_cast<uint64_t>(cur / 10);
      rem = static_cast<uint64_t>(cur % 10);
    }
    digits += static_cast<char>('0' + rem);
  }
  std::reverse(digits.begin(), digits.end());
  return digits;
}

bool BitVec::operator==(const BitVec& o) const {
  return width_ == o.width_ && words_ == o.words_;
}

uint32_t clampShiftAmount(const BitVec& amount, uint32_t width) {
  if (!amount.fitsUint64()) return width;
  uint64_t a = amount.toUint64();
  return a >= width ? width : static_cast<uint32_t>(a);
}

size_t BitVec::hash() const {
  size_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(width_);
  for (uint64_t w : words_) mix(w);
  return h;
}

}  // namespace flay
