#ifndef FLAY_SUPPORT_THREAD_POOL_H
#define FLAY_SUPPORT_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace flay::support {

/// Fixed pool of worker threads for batch fan-out. The intended shape is the
/// parallel semantics-check engine: the caller collects a batch of
/// independent, read-only tasks (each SAT query bit-blasts into its own
/// solver over an immutable arena snapshot), runs them with run(), and only
/// then resumes mutating shared state. run() is a barrier — it returns once
/// every task of the batch has finished — so callers never need per-task
/// futures or shutdown coordination.
class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1). Workers idle on a condition
  /// variable between batches.
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Runs every task, using the calling thread as an extra worker, and
  /// blocks until all of them completed. If any task threw, the first
  /// exception (in completion order) is rethrown here after the batch has
  /// fully drained — tasks are never abandoned mid-batch. An empty batch
  /// returns immediately. run() is NOT reentrant: calling it from inside a
  /// task of this pool — whether the task runs on a worker thread or on the
  /// run() caller helping to drain — would deadlock the batch-completion
  /// barrier on that task's own unfinished count, so it is rejected with
  /// std::logic_error instead, which run() then surfaces to the outer caller
  /// through the usual first-exception rethrow. Nested run() on a
  /// *different* pool is fine.
  void run(std::vector<std::function<void()>> tasks);

 private:
  void workerLoop();
  /// Pops and runs queued tasks until the queue is empty. Shared between
  /// workers and the run() caller.
  void drainQueue(std::unique_lock<std::mutex>& lock);
  void finishTask(std::unique_lock<std::mutex>& lock);

  std::mutex mu_;
  std::condition_variable wake_;   // workers: new tasks or shutdown
  std::condition_variable done_;   // run(): batch completion
  std::deque<std::function<void()>> queue_;
  size_t pending_ = 0;  // queued + currently running tasks
  std::exception_ptr firstError_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace flay::support

#endif  // FLAY_SUPPORT_THREAD_POOL_H
