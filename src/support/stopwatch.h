#ifndef FLAY_SUPPORT_STOPWATCH_H
#define FLAY_SUPPORT_STOPWATCH_H

#include <chrono>
#include <cstdint>

namespace flay::support {

/// The one timing source for every latency sample in the codebase:
/// std::chrono::steady_clock, so a wall-clock step (NTP slew, suspend) can
/// never produce a negative or wildly wrong duration. Benches, the replay
/// harness, and the controller's lag accounting all go through this instead
/// of hand-rolled now()/duration_cast boilerplate.
class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;

  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  uint64_t elapsedMicros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              start_)
            .count());
  }

  double elapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Monotonic microsecond stamp (steady-clock epoch). Only differences are
  /// meaningful; stamps are comparable across threads within one process.
  static uint64_t nowMicros() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now().time_since_epoch())
            .count());
  }

 private:
  Clock::time_point start_;
};

}  // namespace flay::support

#endif  // FLAY_SUPPORT_STOPWATCH_H
