#ifndef FLAY_SUPPORT_BITVEC_H
#define FLAY_SUPPORT_BITVEC_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace flay {

/// Arbitrary-width unsigned bit-vector value with two's-complement
/// wrap-around arithmetic, matching P4 `bit<N>` semantics. Values are kept
/// canonical: bits above `width()` are always zero. Width 0 is permitted and
/// denotes the empty bit string (useful for fold identities).
class BitVec {
 public:
  BitVec() = default;

  /// Value `value` truncated to `width` bits.
  BitVec(uint32_t width, uint64_t value);

  static BitVec zero(uint32_t width) { return BitVec(width, 0); }
  static BitVec one(uint32_t width) { return BitVec(width, 1); }
  static BitVec allOnes(uint32_t width);

  /// Parses "123", "0x1f", "0b101", or "0o17"; returns the value truncated
  /// to `width` bits. Underscores are permitted as digit separators.
  static BitVec parse(uint32_t width, std::string_view text);

  uint32_t width() const { return width_; }
  bool isZero() const;
  bool isAllOnes() const;
  /// True if the value fits in a uint64_t.
  bool fitsUint64() const;
  /// Low 64 bits of the value.
  uint64_t toUint64() const;
  /// Bit `i` (0 = least significant). `i` must be < width().
  bool bit(uint32_t i) const;
  uint32_t countOnes() const;
  /// Number of contiguous one bits starting from the MSB (prefix length of
  /// an LPM-style mask). Returns width() for an all-ones value.
  uint32_t leadingOnes() const;
  /// True if the value has the form 1...10...0 (a valid LPM prefix mask).
  bool isPrefixMask() const;

  // Arithmetic (mod 2^width). Operands must have equal width.
  BitVec add(const BitVec& o) const;
  BitVec sub(const BitVec& o) const;
  BitVec mul(const BitVec& o) const;
  /// Unsigned division; division by zero yields all-ones (SMT-LIB choice).
  BitVec udiv(const BitVec& o) const;
  /// Unsigned remainder; remainder by zero yields the dividend.
  BitVec urem(const BitVec& o) const;
  BitVec neg() const;

  // Bitwise. Operands must have equal width.
  BitVec bitAnd(const BitVec& o) const;
  BitVec bitOr(const BitVec& o) const;
  BitVec bitXor(const BitVec& o) const;
  BitVec bitNot() const;

  /// Logical shifts; shift amounts >= width yield zero.
  BitVec shl(uint32_t amount) const;
  BitVec lshr(uint32_t amount) const;

  // Comparisons (unsigned). Operands must have equal width.
  bool eq(const BitVec& o) const;
  bool ult(const BitVec& o) const;
  bool ule(const BitVec& o) const;

  // Width changes.
  /// Bits hi..lo inclusive; hi < width(), lo <= hi.
  BitVec slice(uint32_t hi, uint32_t lo) const;
  BitVec zext(uint32_t newWidth) const;
  BitVec trunc(uint32_t newWidth) const;
  /// `this` becomes the high bits: result = this ++ low.
  BitVec concat(const BitVec& low) const;

  /// Lowercase hex with 0x prefix, zero-padded to ceil(width/4) digits.
  std::string toHexString() const;
  /// Decimal rendering (exact, arbitrary width).
  std::string toDecimalString() const;

  bool operator==(const BitVec& o) const;
  bool operator!=(const BitVec& o) const { return !(*this == o); }

  /// FNV-1a style hash over width and words.
  size_t hash() const;

 private:
  static constexpr uint32_t kWordBits = 64;
  uint32_t numWords() const { return (width_ + kWordBits - 1) / kWordBits; }
  /// Zeroes bits above width_ in the top word.
  void clamp();
  void checkSameWidth(const BitVec& o) const;

  uint32_t width_ = 0;
  std::vector<uint64_t> words_;
};

/// Shift amount of a dynamic (BitVec-valued) shift, clamped for SMT-LIB
/// semantics: any amount at or beyond `width` shifts every bit out, so it
/// collapses to `width` (which BitVec::shl/lshr and the expression arena map
/// to the zero result). Frontends must use this instead of a narrowing cast:
/// an amount of 2^32 cast to uint32_t wraps to 0 — "no shift", the opposite
/// of the SMT-LIB answer the solver computes.
uint32_t clampShiftAmount(const BitVec& amount, uint32_t width);

}  // namespace flay

#endif  // FLAY_SUPPORT_BITVEC_H
