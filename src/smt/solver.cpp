#include "smt/solver.h"

#include <array>

#include "obs/obs.h"
#include "smt/internal_obs.h"

namespace flay::smt {

using expr::ExprRef;
using internal::PhaseTimer;
using internal::SmtObs;

SmtSolver::SmtSolver(const expr::ExprArena& arena)
    : arena_(arena),
      sat_(std::make_unique<sat::Solver>()),
      blaster_(std::make_unique<BitBlaster>(arena, *sat_)) {}

SmtSolver::~SmtSolver() = default;

void SmtSolver::assertExpr(ExprRef boolExpr) {
  sat::Lit l = blaster_->blastBool(boolExpr);
  sat_->addUnit(l);
}

CheckResult SmtSolver::check() {
  SmtObs& o = SmtObs::get();
  obs::ScopedTimer t(o.checkUs, "smt.check");
  o.checks.add(1);
  switch (sat_->solve()) {
    case sat::Result::kSat:
      o.satResults.add(1);
      return CheckResult::kSat;
    case sat::Result::kUnsat:
      o.unsatResults.add(1);
      return CheckResult::kUnsat;
    case sat::Result::kUnknown:
      break;
  }
  o.unknownResults.add(1);
  return CheckResult::kUnknown;
}

void SmtSolver::setConflictBudget(uint64_t maxConflictsPerCheck) {
  sat_->setConflictBudget(maxConflictsPerCheck);
}

BitVec SmtSolver::modelValue(ExprRef var) {
  // Blasting a variable outside any assertion just allocates fresh bits; the
  // model then reports whatever the solver assigned (default zero-ish).
  blaster_->blastBv(var);
  return blaster_->bvModelValue(var);
}

bool SmtSolver::modelValueBool(ExprRef var) {
  blaster_->blastBool(var);
  return blaster_->boolModelValue(var);
}

uint64_t SmtSolver::numConflicts() const { return sat_->numConflicts(); }

std::optional<bool> isSatisfiableWithin(const expr::ExprArena& arena,
                                        ExprRef boolExpr,
                                        uint64_t maxConflicts) {
  // The arena folds constants eagerly, so test the trivial cases first.
  if (arena.isTrue(boolExpr)) return true;
  if (arena.isFalse(boolExpr)) return false;
  SmtSolver solver(arena);
  solver.setConflictBudget(maxConflicts);
  solver.assertExpr(boolExpr);
  switch (solver.check()) {
    case CheckResult::kSat:
      return true;
    case CheckResult::kUnsat:
      return false;
    case CheckResult::kUnknown:
      break;
  }
  return std::nullopt;
}

std::optional<bool> isValidWithin(const expr::ExprArena& arena,
                                  ExprRef boolExpr, uint64_t maxConflicts) {
  SmtObs& o = SmtObs::get();
  if (arena.isTrue(boolExpr) || arena.isFalse(boolExpr)) {
    o.foldedQueries.add(1);
    return arena.isTrue(boolExpr);
  }
  o.validQueries.add(1);
  obs::ScopedTimer t(o.checkUs, "smt.valid");
  // valid(e) <=> unsat(!e). Asserting the blasted literal negated encodes !e
  // without needing a mutable arena.
  sat::Solver sat;
  sat.setConflictBudget(maxConflicts);
  BitBlaster blaster(arena, sat);
  sat::Lit l = blaster.blastBool(boolExpr);
  sat.addUnit(~l);
  switch (sat.solve()) {
    case sat::Result::kUnsat:
      return true;
    case sat::Result::kSat:
      return false;
    case sat::Result::kUnknown:
      break;
  }
  o.unknownResults.add(1);
  return std::nullopt;
}

bool isSatisfiable(const expr::ExprArena& arena, ExprRef boolExpr) {
  return *isSatisfiableWithin(arena, boolExpr, 0);
}

bool isValid(const expr::ExprArena& arena, ExprRef boolExpr) {
  return *isValidWithin(arena, boolExpr, 0);
}

bool areEquivalent(expr::ExprArena& arena, ExprRef a, ExprRef b) {
  if (a == b) return true;  // hash-consing: structural equality is identity
  if (arena.width(a) != arena.width(b)) return false;
  ExprRef same = arena.eq(a, b);
  return isValid(arena, same);
}

std::optional<ExprRef> constantValueWithin(expr::ExprArena& arena, ExprRef e,
                                           uint64_t maxConflicts,
                                           bool* timedOut) {
  SmtObs& o = SmtObs::get();
  if (timedOut != nullptr) *timedOut = false;
  auto expired = [&]() -> std::optional<ExprRef> {
    if (timedOut != nullptr) *timedOut = true;
    o.unknownResults.add(1);
    return std::nullopt;
  };
  if (arena.isConst(e)) {
    o.foldedQueries.add(1);
    return e;
  }
  o.constantQueries.add(1);
  obs::ScopedTimer timer(o.checkUs, "smt.constant");
  // Find one model value v, then check whether e == v is valid.
  sat::Solver sat;
  sat.setConflictBudget(maxConflicts);
  BitBlaster blaster(arena, sat);
  ExprRef candidate;
  if (arena.isBool(e)) {
    sat::Lit l = blaster.blastBool(e);
    // Try e == true first.
    sat::Result asTrue = sat.solve(std::array{l});
    if (asTrue == sat::Result::kUnknown) return expired();
    sat::Result asFalse = sat.solve(std::array{~l});
    if (asFalse == sat::Result::kUnknown) return expired();
    bool canBeTrue = asTrue == sat::Result::kSat;
    bool canBeFalse = asFalse == sat::Result::kSat;
    if (canBeTrue && canBeFalse) return std::nullopt;
    candidate = arena.boolConst(canBeTrue);
    return candidate;
  }
  blaster.blastBv(e);
  sat::Result modelRun = sat.solve();
  if (modelRun == sat::Result::kUnknown) return expired();
  if (modelRun != sat::Result::kSat) {
    // Unreachable in a consistent encoding, but be conservative.
    return std::nullopt;
  }
  BitVec v = blaster.bvModelValue(e);
  candidate = arena.bvConst(v);
  // e can differ from v iff (e == v) is not valid.
  ExprRef eqV = arena.eq(e, candidate);
  std::optional<bool> valid = isValidWithin(arena, eqV, maxConflicts);
  if (!valid.has_value()) return expired();
  if (*valid) return candidate;
  return std::nullopt;
}

std::optional<ExprRef> constantValue(expr::ExprArena& arena, ExprRef e) {
  return constantValueWithin(arena, e, 0, nullptr);
}

ConstantProbe probeConstant(const expr::ExprArena& arena, ExprRef e,
                            uint64_t maxConflicts) {
  SmtObs& o = SmtObs::get();
  ConstantProbe probe;
  if (arena.isConst(e)) {
    o.foldedQueries.add(1);
    probe.constant = true;
    if (arena.isBool(e)) {
      probe.boolValue = arena.isTrue(e);
    } else {
      probe.value = arena.constValue(e);
    }
    return probe;
  }
  o.constantQueries.add(1);
  obs::ScopedTimer timer(o.checkUs, "smt.probe_constant");
  PhaseTimer phases;
  sat::Solver sat;
  sat.setConflictBudget(maxConflicts);
  BitBlaster blaster(arena, sat);
  auto expired = [&probe, &o] {
    probe.timedOut = true;
    o.unknownResults.add(1);
    return probe;
  };
  if (arena.isBool(e)) {
    sat::Lit l;
    {
      auto t = phases.encode();
      l = blaster.blastBool(e);
    }
    sat::Result asTrue, asFalse;
    {
      auto t = phases.solve();
      asTrue = sat.solve(std::array{l});
    }
    if (asTrue == sat::Result::kUnknown) return expired();
    {
      auto t = phases.solve();
      asFalse = sat.solve(std::array{~l});
    }
    if (asFalse == sat::Result::kUnknown) return expired();
    bool canBeTrue = asTrue == sat::Result::kSat;
    bool canBeFalse = asFalse == sat::Result::kSat;
    if (canBeTrue && canBeFalse) {
      probe.notConstant = true;
    } else {
      probe.constant = true;
      probe.boolValue = canBeTrue;
    }
    return probe;
  }
  // Encode e before the model run: the solve must range over its bits for
  // bvModelValue to read a candidate out of the model.
  {
    auto t = phases.encode();
    blaster.blastBv(e);
  }
  sat::Result modelRun;
  {
    auto t = phases.solve();
    modelRun = sat.solve();
  }
  if (modelRun == sat::Result::kUnknown) return expired();
  if (modelRun != sat::Result::kSat) {
    // Unreachable in a consistent encoding, but be conservative.
    probe.notConstant = true;
    return probe;
  }
  BitVec v = blaster.bvModelValue(e);
  // e is constant iff no model disagrees with v. Reusing the solver keeps
  // the Tseitin encoding (and its learned clauses) for the second call.
  sat::Lit same;
  {
    auto t = phases.encode();
    same = blaster.eqConst(e, v);
  }
  sat::Result differs;
  {
    auto t = phases.solve();
    differs = sat.solve(std::array{~same});
  }
  if (differs == sat::Result::kUnknown) return expired();
  if (differs == sat::Result::kSat) {
    probe.notConstant = true;
  } else {
    probe.constant = true;
    probe.value = std::move(v);
  }
  return probe;
}

}  // namespace flay::smt
