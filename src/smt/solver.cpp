#include "smt/solver.h"

#include <array>

namespace flay::smt {

using expr::ExprRef;

SmtSolver::SmtSolver(const expr::ExprArena& arena)
    : arena_(arena),
      sat_(std::make_unique<sat::Solver>()),
      blaster_(std::make_unique<BitBlaster>(arena, *sat_)) {}

SmtSolver::~SmtSolver() = default;

void SmtSolver::assertExpr(ExprRef boolExpr) {
  sat::Lit l = blaster_->blastBool(boolExpr);
  sat_->addUnit(l);
}

CheckResult SmtSolver::check() {
  return sat_->solve() == sat::Result::kSat ? CheckResult::kSat
                                            : CheckResult::kUnsat;
}

BitVec SmtSolver::modelValue(ExprRef var) {
  // Blasting a variable outside any assertion just allocates fresh bits; the
  // model then reports whatever the solver assigned (default zero-ish).
  blaster_->blastBv(var);
  return blaster_->bvModelValue(var);
}

bool SmtSolver::modelValueBool(ExprRef var) {
  blaster_->blastBool(var);
  return blaster_->boolModelValue(var);
}

uint64_t SmtSolver::numConflicts() const { return sat_->numConflicts(); }

bool isSatisfiable(const expr::ExprArena& arena, ExprRef boolExpr) {
  // The arena folds constants eagerly, so test the trivial cases first.
  if (arena.isTrue(boolExpr)) return true;
  if (arena.isFalse(boolExpr)) return false;
  SmtSolver solver(arena);
  solver.assertExpr(boolExpr);
  return solver.check() == CheckResult::kSat;
}

bool isValid(const expr::ExprArena& arena, ExprRef boolExpr) {
  if (arena.isTrue(boolExpr)) return true;
  if (arena.isFalse(boolExpr)) return false;
  // valid(e) <=> unsat(!e). Asserting the blasted literal negated encodes !e
  // without needing a mutable arena.
  sat::Solver sat;
  BitBlaster blaster(arena, sat);
  sat::Lit l = blaster.blastBool(boolExpr);
  sat.addUnit(~l);
  return sat.solve() == sat::Result::kUnsat;
}

bool areEquivalent(expr::ExprArena& arena, ExprRef a, ExprRef b) {
  if (a == b) return true;  // hash-consing: structural equality is identity
  if (arena.width(a) != arena.width(b)) return false;
  ExprRef same = arena.eq(a, b);
  return isValid(arena, same);
}

std::optional<ExprRef> constantValue(expr::ExprArena& arena, ExprRef e) {
  if (arena.isConst(e)) return e;
  // Find one model value v, then check whether e == v is valid.
  sat::Solver sat;
  BitBlaster blaster(arena, sat);
  ExprRef candidate;
  if (arena.isBool(e)) {
    sat::Lit l = blaster.blastBool(e);
    // Try e == true first.
    bool canBeTrue = sat.solve(std::array{l}) == sat::Result::kSat;
    bool canBeFalse = sat.solve(std::array{~l}) == sat::Result::kSat;
    if (canBeTrue && canBeFalse) return std::nullopt;
    candidate = arena.boolConst(canBeTrue);
    return candidate;
  }
  blaster.blastBv(e);
  if (sat.solve() != sat::Result::kSat) {
    // Unreachable in a consistent encoding, but be conservative.
    return std::nullopt;
  }
  BitVec v = blaster.bvModelValue(e);
  candidate = arena.bvConst(v);
  // e can differ from v iff (e == v) is not valid.
  ExprRef eqV = arena.eq(e, candidate);
  if (isValid(arena, eqV)) return candidate;
  return std::nullopt;
}

}  // namespace flay::smt
