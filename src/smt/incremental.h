#ifndef FLAY_SMT_INCREMENTAL_H
#define FLAY_SMT_INCREMENTAL_H

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "expr/arena.h"
#include "expr/eval.h"
#include "sat/session.h"
#include "smt/bitblaster.h"
#include "smt/solver.h"

namespace flay::smt {

struct ProbeSessionOptions {
  /// Rebuild valve: when the warm solver exceeds either cap, the session is
  /// torn down and re-warmed from scratch. Retired clauses are disabled but
  /// not physically reclaimed, and per-probe eqConst gates accumulate, so
  /// the valve is what bounds memory over a long-lived session.
  uint32_t maxVars = 1u << 17;
  uint64_t maxClauses = 1u << 18;
};

/// Warm incremental constantness prober: the session-lifetime counterpart of
/// smt::probeConstant. One instance owns one sat::SolverSession plus one
/// incremental BitBlaster and answers many probes across updates to the same
/// program version, reusing the Tseitin encoding (delta CNF: unchanged
/// subexpressions are memo hits costing zero clauses) and the solver's
/// learned clauses.
///
/// Scopes and clause groups: each probe names the program component (scope)
/// it belongs to. Encoding emitted for nodes interned during the current
/// update round lands in that scope's activation-literal clause group;
/// nodes older than the watermark (see setNodeWatermark) are shared program
/// structure and encode into the permanent group. retireScope() disables a
/// scope's group and purges every memo entry that depended on it — required
/// for soundness, because a retired group's gate variables become
/// unconstrained and a stale memo hit would manufacture spurious
/// "not constant" answers.
///
/// Witness memo: a "not constant" verdict is re-provable without any SAT
/// search — two input valuations on which the expression concretely
/// evaluates to different values are a standing disproof of constancy, and
/// because expressions are immutable hash-consed arena nodes the proof can
/// never go stale. The session captures such a pair from the solver models
/// the first time a point is proven not-constant and re-checks it by two
/// concrete evaluations (microseconds, zero solver work) on every later
/// probe of the same expression. Constant points symmetrically remember
/// their proven value so steady-state re-proof is a single UNSAT solve
/// against it (the equality gate is an encoding memo hit) instead of a
/// model search plus a refutation. Both memos survive rebuild() and scope
/// retirement — they reference only arena-level semantics, not encoding
/// state.
///
/// Determinism: verdicts are facts about expressions, so warm and fresh
/// probes can only diverge through kUnknown (conflict-budget exhaustion).
/// Whenever any warm solve returns kUnknown the session falls back to a
/// fresh smt::probeConstant with the same budget, making its timeout
/// behavior identical to the non-incremental path. The witness fast path
/// only ever returns verdicts a budget-free solve would also return, and a
/// failed remembered-value re-proof (budget exhaustion) drops through to
/// the same fresh fallback.
///
/// Not thread-safe: the check engine keeps one session per worker slot.
class ProbeSession {
 public:
  explicit ProbeSession(const expr::ExprArena& arena,
                        ProbeSessionOptions options = {});

  ProbeSession(const ProbeSession&) = delete;
  ProbeSession& operator=(const ProbeSession&) = delete;

  /// Probes whether `e` is constant. `scope` tags newly emitted clause
  /// groups; `maxConflicts` bounds every underlying SAT call (0 =
  /// unlimited), exactly like probeConstant.
  ConstantProbe probe(expr::ExprRef e, const std::string& scope,
                      uint64_t maxConflicts);

  /// Retires the clause group(s) opened for `scope` and purges dependent
  /// encoding. No-op for scopes this session never encoded for.
  void retireScope(const std::string& scope);

  /// Raises the shared-structure watermark: arena nodes with id below it
  /// encode into the permanent group from now on. Typically the arena node
  /// count at the start of an update round. Never lowers.
  void setNodeWatermark(uint32_t nodeId);

  /// Drops all warm state (solver, encoding, scope groups). The next probe
  /// re-warms lazily.
  void rebuild();

  uint64_t numRebuilds() const { return rebuilds_; }
  uint64_t numFallbacks() const { return fallbacks_; }
  const sat::SolverSession& session() const { return *session_; }

 private:
  /// Two input valuations (symbol id -> concrete value) under which the
  /// expression evaluates differently; a permanent disproof of constancy.
  struct Witness {
    std::vector<std::pair<uint32_t, expr::Value>> a, b;
  };

  uint32_t groupForScope(const std::string& scope);
  void maybeRebuild();
  /// Runs the warm two-sided constantness check; returns false when any
  /// solve exhausted its budget (caller falls back to a fresh probe).
  bool tryProbe(expr::ExprRef e, const std::string& scope,
                uint64_t maxConflicts, ConstantProbe* out);
  /// Re-proves a remembered not-constant verdict by concretely evaluating
  /// `e` under both stored witness valuations. Returns false (after
  /// dropping the pair) if no witness is stored or it fails to
  /// discriminate.
  bool tryWitness(expr::ExprRef e, ConstantProbe* out);
  /// Variable leaves reachable from `e`, cached per expression id.
  const std::vector<expr::ExprRef>& supportVars(expr::ExprRef e);
  /// Reads the last solver model's value for every variable in `e`'s
  /// support. Only valid immediately after a kSat solve whose decision cone
  /// covered `e`.
  std::vector<std::pair<uint32_t, expr::Value>> readSupportModel(
      expr::ExprRef e);

  const expr::ExprArena& arena_;
  ProbeSessionOptions options_;
  std::unique_ptr<sat::SolverSession> session_;
  std::unique_ptr<BitBlaster> blaster_;
  std::unordered_map<std::string, uint32_t> scopeGroups_;
  expr::Evaluator eval_{arena_};
  // Keyed by expression id; survive rebuild() (see class comment).
  std::unordered_map<uint32_t, Witness> witnesses_;
  std::unordered_map<uint32_t, expr::Value> knownValues_;
  std::unordered_map<uint32_t, std::vector<expr::ExprRef>> supportCache_;
  uint32_t watermark_ = 0;
  uint64_t rebuilds_ = 0;
  uint64_t fallbacks_ = 0;
};

}  // namespace flay::smt

#endif  // FLAY_SMT_INCREMENTAL_H
