#ifndef FLAY_SMT_BITBLASTER_H
#define FLAY_SMT_BITBLASTER_H

#include <span>
#include <unordered_map>
#include <vector>

#include "expr/arena.h"
#include "sat/solver.h"

namespace flay::smt {

/// Tseitin-encodes QF_BV expressions into CNF over a sat::ClauseSink (a
/// plain per-probe Solver or an incremental SolverSession). Bit-vector nodes
/// become vectors of literals (LSB first); boolean nodes become single
/// literals. Hash-consing in the arena means shared subexpressions are
/// encoded exactly once.
///
/// Incremental mode (enableIncremental) additionally tracks, per blasted
/// node: the SAT-variable range its encoding allocated, the child nodes it
/// referenced, and the transitive set of retirable clause groups its gates
/// were emitted into. That bookkeeping supports:
///  - delta CNF: a re-probe of an unchanged expression is a pure memo hit —
///    zero new clauses;
///  - cone-of-influence collection (collectCone/extendCone) feeding
///    Solver::solveRestricted, so a warm session decides only over the
///    probe's support instead of every variable it has ever allocated;
///  - purgeGroup: when a clause group is retired, every memo entry whose
///    encoding transitively used that group is dropped, because its gate
///    variables are now unconstrained (a stale memo hit would manufacture
///    spurious "not constant" answers).
///
/// Group routing policy: nodes with id below the permanent watermark encode
/// into group 0 (unguarded, never retired); newer nodes encode into the
/// current group set by the caller. Arena interning orders children before
/// parents, so a permanent node can only reference permanent nodes, and
/// permanent memo entries are valid for the life of the session.
class BitBlaster {
 public:
  BitBlaster(const expr::ExprArena& arena, sat::ClauseSink& sink);

  /// Literal equisatisfiable with the boolean expression `e`.
  sat::Lit blastBool(expr::ExprRef e);

  /// Bits (LSB first) of the bit-vector expression `e`.
  const std::vector<sat::Lit>& blastBv(expr::ExprRef e);

  /// Reads the value of a bit-vector expression out of the solver model
  /// after a kSat answer. The expression must have been blasted.
  BitVec bvModelValue(expr::ExprRef e) const;
  bool boolModelValue(expr::ExprRef e) const;

  /// Literal equisatisfiable with `e == value`, built directly at the CNF
  /// level. This is the arena-free alternative to interning an eq node:
  /// constantness probes on worker threads compare against candidate model
  /// values without ever mutating the (shared, not thread-safe) arena.
  /// In incremental mode the gate is memoized per (expression, value) — a
  /// steady-state re-probe therefore emits no clauses at all, which is what
  /// lets the solver keep its assumption trail warm between probes. Memo
  /// entries record the clause groups they depend on and are dropped by
  /// purgeGroup alongside the node memos.
  sat::Lit eqConst(expr::ExprRef e, const BitVec& value);

  sat::Lit trueLit() const { return trueLit_; }

  // -- Incremental-session support ------------------------------------------

  /// Turns on per-node range/dependency tracking. Must be called before the
  /// first blast; nodes with id < `permanentWatermark` route to group 0.
  void enableIncremental(uint32_t permanentWatermark);
  bool incremental() const { return incremental_; }

  /// Raises the permanent watermark (it never lowers): nodes interned before
  /// the current update round are shared program structure and their
  /// encoding should survive scope retirement.
  void setPermanentWatermark(uint32_t nodeId) {
    if (nodeId > permanentWatermark_) permanentWatermark_ = nodeId;
  }

  /// Group for nodes at or above the watermark; the caller (ProbeSession)
  /// points this at the probing scope's group before each probe.
  void setCurrentGroup(uint32_t g) { currentGroup_ = g; }

  /// Drops every memo entry whose encoding transitively emitted into `g`.
  /// Required on retirement: the group's gate variables become unconstrained.
  void purgeGroup(uint32_t g);

  /// Makes `cone()` the transitive support variables of `e`'s encoding. `e`
  /// must have been blasted in incremental mode. Cones are cached per
  /// expression and invalidated whenever a group is purged, so a re-probe of
  /// an unchanged expression is O(1) here too.
  void collectCone(expr::ExprRef e);
  /// Adds every variable allocated at or after `fromVar` to the cone (used
  /// for the eqConst gates layered on top of a blasted expression; the range
  /// only ever covers freshly allocated variables, which cannot already be in
  /// the cone).
  void extendCone(uint32_t fromVar);
  std::span<const uint32_t> cone() const {
    return activeCone_ ? std::span<const uint32_t>(activeCone_->vars)
                       : std::span<const uint32_t>();
  }
  /// The free-variable subset of cone(): the bits of kVar/kBoolVar nodes.
  /// Feeding this as the decision set of a split solveRestricted answers the
  /// probe with O(inputs) decisions — every other cone variable is a Tseitin
  /// gate output that propagation forces once the inputs are assigned.
  std::span<const uint32_t> decisionCone() const {
    return activeCone_ ? std::span<const uint32_t>(activeCone_->inputs)
                       : std::span<const uint32_t>();
  }
  /// Byte-per-variable membership mask over cone() (variables past the end
  /// are outside the cone). Persisted with the cone cache entry so a warm
  /// re-probe hands the solver its propagation filter in O(1) instead of
  /// re-stamping O(cone) marks per solve.
  std::span<const uint8_t> coneMask() const {
    return activeCone_ ? std::span<const uint8_t>(activeCone_->mask)
                       : std::span<const uint8_t>();
  }

  size_t numTrackedNodes() const { return nodeInfo_.size(); }

 private:
  struct NodeInfo {
    uint32_t varBegin = 0;  // [varBegin, varEnd): vars allocated while this
    uint32_t varEnd = 0;    // node (and nested fresh children) blasted
    std::vector<uint32_t> children;   // node ids referenced (deduped)
    std::vector<uint32_t> groupDeps;  // retirable groups, transitive (sorted)
  };

  sat::Lit freshLit();
  sat::Lit constLit(bool value) const { return value ? trueLit_ : ~trueLit_; }
  sat::Lit mkAnd(sat::Lit a, sat::Lit b);
  sat::Lit mkOr(sat::Lit a, sat::Lit b);
  sat::Lit mkXor(sat::Lit a, sat::Lit b);
  sat::Lit mkXnor(sat::Lit a, sat::Lit b) { return ~mkXor(a, b); }
  /// c = s ? a : b
  sat::Lit mkMux(sat::Lit s, sat::Lit a, sat::Lit b);
  sat::Lit mkAndReduce(const std::vector<sat::Lit>& lits);
  sat::Lit mkOrReduce(const std::vector<sat::Lit>& lits);

  std::vector<sat::Lit> addBits(const std::vector<sat::Lit>& a,
                                const std::vector<sat::Lit>& b,
                                sat::Lit carryIn);
  std::vector<sat::Lit> negBits(const std::vector<sat::Lit>& a);
  std::vector<sat::Lit> mulBits(const std::vector<sat::Lit>& a,
                                const std::vector<sat::Lit>& b);
  /// Restoring division; returns {quotient, remainder}.
  std::pair<std::vector<sat::Lit>, std::vector<sat::Lit>> divremBits(
      const std::vector<sat::Lit>& a, const std::vector<sat::Lit>& b);
  sat::Lit ultBits(const std::vector<sat::Lit>& a,
                   const std::vector<sat::Lit>& b);
  sat::Lit eqBits(const std::vector<sat::Lit>& a,
                  const std::vector<sat::Lit>& b);

  uint32_t groupFor(expr::ExprRef e) const {
    return e.id < permanentWatermark_ ? 0 : currentGroup_;
  }
  void noteChild(expr::ExprRef e);
  /// Returns the previous active group; pairs with finishNode.
  uint32_t beginNode(uint32_t myGroup, uint32_t* varBegin);
  void finishNode(expr::ExprRef e, uint32_t varBegin, uint32_t myGroup,
                  uint32_t prevGroup);
  void addConeRange(uint32_t begin, uint32_t end);

  struct EqMemoEntry {
    BitVec value;
    sat::Lit lit;
    std::vector<uint32_t> groupDeps;  // sorted; gate group + base expr deps
  };
  struct ConeCacheEntry {
    uint64_t epoch = 0;  // valid iff == blastEpoch_
    std::vector<uint32_t> vars;    // full support: inputs + gate outputs
    std::vector<uint32_t> inputs;  // free bits only (kVar/kBoolVar nodes)
    std::vector<uint8_t> mask;     // var -> nonzero iff in vars; doubles as
                                   // the solver's O(1) propagation filter
  };

  const expr::ExprArena& arena_;
  sat::ClauseSink& sink_;
  sat::Lit trueLit_;
  std::unordered_map<uint32_t, std::vector<sat::Lit>> bvMemo_;
  std::unordered_map<uint32_t, sat::Lit> boolMemo_;
  std::unordered_map<uint32_t, std::vector<EqMemoEntry>> eqMemo_;

  bool incremental_ = false;
  uint32_t permanentWatermark_ = 0;
  uint32_t currentGroup_ = 0;
  std::unordered_map<uint32_t, NodeInfo> nodeInfo_;
  std::unordered_map<uint32_t, std::vector<uint32_t>> groupNodes_;
  std::vector<std::vector<uint32_t>> childFrames_;

  // Cone cache: one support-variable list per probed expression, valid until
  // the next purgeGroup (which bumps blastEpoch_). activeCone_ points at the
  // entry selected by the last collectCone call; unordered_map node stability
  // keeps the pointer valid across inserts.
  std::unordered_map<uint32_t, ConeCacheEntry> coneCache_;
  ConeCacheEntry* activeCone_ = nullptr;
  uint64_t blastEpoch_ = 1;

  // Cone-collection scratch, reused across rebuilds of a cache entry.
  std::vector<uint32_t> visitStamp_;  // node id -> last visit epoch
  uint32_t visitEpoch_ = 0;
  std::vector<uint32_t> visitStack_;
};

}  // namespace flay::smt

#endif  // FLAY_SMT_BITBLASTER_H
