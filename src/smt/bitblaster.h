#ifndef FLAY_SMT_BITBLASTER_H
#define FLAY_SMT_BITBLASTER_H

#include <unordered_map>
#include <vector>

#include "expr/arena.h"
#include "sat/solver.h"

namespace flay::smt {

/// Tseitin-encodes QF_BV expressions into CNF over a sat::Solver. Bit-vector
/// nodes become vectors of literals (LSB first); boolean nodes become single
/// literals. Hash-consing in the arena means shared subexpressions are
/// encoded exactly once.
class BitBlaster {
 public:
  BitBlaster(const expr::ExprArena& arena, sat::Solver& solver);

  /// Literal equisatisfiable with the boolean expression `e`.
  sat::Lit blastBool(expr::ExprRef e);

  /// Bits (LSB first) of the bit-vector expression `e`.
  const std::vector<sat::Lit>& blastBv(expr::ExprRef e);

  /// Reads the value of a bit-vector expression out of the solver model
  /// after a kSat answer. The expression must have been blasted.
  BitVec bvModelValue(expr::ExprRef e) const;
  bool boolModelValue(expr::ExprRef e) const;

  /// Literal equisatisfiable with `e == value`, built directly at the CNF
  /// level. This is the arena-free alternative to interning an eq node:
  /// constantness probes on worker threads compare against candidate model
  /// values without ever mutating the (shared, not thread-safe) arena.
  sat::Lit eqConst(expr::ExprRef e, const BitVec& value);

  sat::Lit trueLit() const { return trueLit_; }

 private:
  sat::Lit freshLit();
  sat::Lit constLit(bool value) const { return value ? trueLit_ : ~trueLit_; }
  sat::Lit mkAnd(sat::Lit a, sat::Lit b);
  sat::Lit mkOr(sat::Lit a, sat::Lit b);
  sat::Lit mkXor(sat::Lit a, sat::Lit b);
  sat::Lit mkXnor(sat::Lit a, sat::Lit b) { return ~mkXor(a, b); }
  /// c = s ? a : b
  sat::Lit mkMux(sat::Lit s, sat::Lit a, sat::Lit b);
  sat::Lit mkAndReduce(const std::vector<sat::Lit>& lits);
  sat::Lit mkOrReduce(const std::vector<sat::Lit>& lits);

  std::vector<sat::Lit> addBits(const std::vector<sat::Lit>& a,
                                const std::vector<sat::Lit>& b,
                                sat::Lit carryIn);
  std::vector<sat::Lit> negBits(const std::vector<sat::Lit>& a);
  std::vector<sat::Lit> mulBits(const std::vector<sat::Lit>& a,
                                const std::vector<sat::Lit>& b);
  /// Restoring division; returns {quotient, remainder}.
  std::pair<std::vector<sat::Lit>, std::vector<sat::Lit>> divremBits(
      const std::vector<sat::Lit>& a, const std::vector<sat::Lit>& b);
  sat::Lit ultBits(const std::vector<sat::Lit>& a,
                   const std::vector<sat::Lit>& b);
  sat::Lit eqBits(const std::vector<sat::Lit>& a,
                  const std::vector<sat::Lit>& b);

  const expr::ExprArena& arena_;
  sat::Solver& solver_;
  sat::Lit trueLit_;
  std::unordered_map<uint32_t, std::vector<sat::Lit>> bvMemo_;
  std::unordered_map<uint32_t, sat::Lit> boolMemo_;
};

}  // namespace flay::smt

#endif  // FLAY_SMT_BITBLASTER_H
