#include "smt/bitblaster.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace flay::smt {

using expr::ExprKind;
using expr::ExprNode;
using expr::ExprRef;
using sat::Lit;

BitBlaster::BitBlaster(const expr::ExprArena& arena, sat::ClauseSink& sink)
    : arena_(arena), sink_(sink) {
  trueLit_ = Lit::make(sink_.newVar(), false);
  sink_.addUnit(trueLit_);
}

Lit BitBlaster::freshLit() { return Lit::make(sink_.newVar(), false); }

Lit BitBlaster::mkAnd(Lit a, Lit b) {
  if (a == constLit(false) || b == constLit(false)) return constLit(false);
  if (a == constLit(true)) return b;
  if (b == constLit(true)) return a;
  if (a == b) return a;
  if (a == ~b) return constLit(false);
  Lit c = freshLit();
  sink_.addClause({~a, ~b, c});
  sink_.addClause({a, ~c});
  sink_.addClause({b, ~c});
  return c;
}

Lit BitBlaster::mkOr(Lit a, Lit b) { return ~mkAnd(~a, ~b); }

Lit BitBlaster::mkXor(Lit a, Lit b) {
  if (a == constLit(false)) return b;
  if (b == constLit(false)) return a;
  if (a == constLit(true)) return ~b;
  if (b == constLit(true)) return ~a;
  if (a == b) return constLit(false);
  if (a == ~b) return constLit(true);
  Lit c = freshLit();
  sink_.addClause({~a, ~b, ~c});
  sink_.addClause({a, b, ~c});
  sink_.addClause({~a, b, c});
  sink_.addClause({a, ~b, c});
  return c;
}

Lit BitBlaster::mkMux(Lit s, Lit a, Lit b) {
  if (s == constLit(true)) return a;
  if (s == constLit(false)) return b;
  if (a == b) return a;
  Lit c = freshLit();
  sink_.addClause({~s, ~a, c});
  sink_.addClause({~s, a, ~c});
  sink_.addClause({s, ~b, c});
  sink_.addClause({s, b, ~c});
  return c;
}

Lit BitBlaster::mkAndReduce(const std::vector<Lit>& lits) {
  Lit acc = constLit(true);
  for (Lit l : lits) acc = mkAnd(acc, l);
  return acc;
}

Lit BitBlaster::mkOrReduce(const std::vector<Lit>& lits) {
  Lit acc = constLit(false);
  for (Lit l : lits) acc = mkOr(acc, l);
  return acc;
}

std::vector<Lit> BitBlaster::addBits(const std::vector<Lit>& a,
                                     const std::vector<Lit>& b, Lit carryIn) {
  assert(a.size() == b.size());
  std::vector<Lit> sum(a.size(), constLit(false));
  Lit carry = carryIn;
  for (size_t i = 0; i < a.size(); ++i) {
    Lit axb = mkXor(a[i], b[i]);
    sum[i] = mkXor(axb, carry);
    // carryOut = (a & b) | (carry & (a ^ b))
    carry = mkOr(mkAnd(a[i], b[i]), mkAnd(carry, axb));
  }
  return sum;
}

std::vector<Lit> BitBlaster::negBits(const std::vector<Lit>& a) {
  std::vector<Lit> inverted;
  inverted.reserve(a.size());
  for (Lit l : a) inverted.push_back(~l);
  std::vector<Lit> zero(a.size(), constLit(false));
  return addBits(inverted, zero, constLit(true));
}

std::vector<Lit> BitBlaster::mulBits(const std::vector<Lit>& a,
                                     const std::vector<Lit>& b) {
  size_t w = a.size();
  std::vector<Lit> acc(w, constLit(false));
  for (size_t i = 0; i < w; ++i) {
    // Partial product: (a << i) masked by b[i].
    std::vector<Lit> pp(w, constLit(false));
    for (size_t j = 0; i + j < w; ++j) pp[i + j] = mkAnd(a[j], b[i]);
    acc = addBits(acc, pp, constLit(false));
  }
  return acc;
}

std::pair<std::vector<Lit>, std::vector<Lit>> BitBlaster::divremBits(
    const std::vector<Lit>& a, const std::vector<Lit>& b) {
  // Restoring division. SMT-LIB semantics for division by zero (q = all
  // ones, r = a) are patched in at the end with muxes on bIsZero.
  size_t w = a.size();
  std::vector<Lit> q(w, constLit(false));
  std::vector<Lit> rem(w, constLit(false));
  for (size_t i = w; i-- > 0;) {
    // rem = (rem << 1) | a[i]
    for (size_t j = w; j-- > 1;) rem[j] = rem[j - 1];
    rem[0] = a[i];
    // geq = rem >= b  <=>  !(rem < b)
    Lit geq = ~ultBits(rem, b);
    q[i] = geq;
    std::vector<Lit> diff = addBits(rem, negBits(b), constLit(false));
    for (size_t j = 0; j < w; ++j) rem[j] = mkMux(geq, diff[j], rem[j]);
  }
  std::vector<Lit> notB;
  notB.reserve(w);
  for (Lit l : b) notB.push_back(~l);
  Lit bIsZero = mkAndReduce(notB);
  for (size_t j = 0; j < w; ++j) {
    q[j] = mkMux(bIsZero, constLit(true), q[j]);
    rem[j] = mkMux(bIsZero, a[j], rem[j]);
  }
  return {q, rem};
}

Lit BitBlaster::ultBits(const std::vector<Lit>& a, const std::vector<Lit>& b) {
  // lt_i = (~a_i & b_i) | ((a_i xnor b_i) & lt_{i-1}), from LSB up.
  Lit lt = constLit(false);
  for (size_t i = 0; i < a.size(); ++i) {
    lt = mkOr(mkAnd(~a[i], b[i]), mkAnd(mkXnor(a[i], b[i]), lt));
  }
  return lt;
}

Lit BitBlaster::eqBits(const std::vector<Lit>& a, const std::vector<Lit>& b) {
  Lit acc = constLit(true);
  for (size_t i = 0; i < a.size(); ++i) acc = mkAnd(acc, mkXnor(a[i], b[i]));
  return acc;
}

void BitBlaster::enableIncremental(uint32_t permanentWatermark) {
  assert(bvMemo_.empty() && boolMemo_.empty() &&
         "enableIncremental must precede the first blast");
  incremental_ = true;
  permanentWatermark_ = permanentWatermark;
}

void BitBlaster::noteChild(ExprRef e) {
  if (incremental_ && !childFrames_.empty()) {
    childFrames_.back().push_back(e.id);
  }
}

uint32_t BitBlaster::beginNode(uint32_t myGroup, uint32_t* varBegin) {
  *varBegin = sink_.numVars();
  uint32_t prev = sink_.activeGroup();
  sink_.setActiveGroup(myGroup);
  childFrames_.emplace_back();
  return prev;
}

void BitBlaster::finishNode(ExprRef e, uint32_t varBegin, uint32_t myGroup,
                            uint32_t prevGroup) {
  sink_.setActiveGroup(prevGroup);
  NodeInfo info;
  info.varBegin = varBegin;
  info.varEnd = sink_.numVars();
  info.children = std::move(childFrames_.back());
  childFrames_.pop_back();
  std::sort(info.children.begin(), info.children.end());
  info.children.erase(
      std::unique(info.children.begin(), info.children.end()),
      info.children.end());
  if (myGroup != 0) info.groupDeps.push_back(myGroup);
  for (uint32_t c : info.children) {
    auto ci = nodeInfo_.find(c);
    if (ci == nodeInfo_.end()) continue;
    info.groupDeps.insert(info.groupDeps.end(), ci->second.groupDeps.begin(),
                          ci->second.groupDeps.end());
  }
  std::sort(info.groupDeps.begin(), info.groupDeps.end());
  info.groupDeps.erase(
      std::unique(info.groupDeps.begin(), info.groupDeps.end()),
      info.groupDeps.end());
  for (uint32_t g : info.groupDeps) groupNodes_[g].push_back(e.id);
  nodeInfo_[e.id] = std::move(info);
}

void BitBlaster::purgeGroup(uint32_t g) {
  auto it = groupNodes_.find(g);
  if (it == groupNodes_.end()) return;
  for (uint32_t id : it->second) {
    auto ni = nodeInfo_.find(id);
    if (ni == nodeInfo_.end()) continue;
    // A node re-blasted since it last appeared in this group's list carries
    // fresh (group-free or different-group) info; leave it alone.
    const auto& deps = ni->second.groupDeps;
    if (!std::binary_search(deps.begin(), deps.end(), g)) continue;
    nodeInfo_.erase(ni);
    bvMemo_.erase(id);
    boolMemo_.erase(id);
  }
  groupNodes_.erase(it);
  // Drop eqConst gates that were emitted into the retired group or built on
  // top of a node that just lost its encoding.
  for (auto eit = eqMemo_.begin(); eit != eqMemo_.end();) {
    std::vector<EqMemoEntry>& entries = eit->second;
    entries.erase(
        std::remove_if(entries.begin(), entries.end(),
                       [g](const EqMemoEntry& m) {
                         return std::binary_search(m.groupDeps.begin(),
                                                   m.groupDeps.end(), g);
                       }),
        entries.end());
    eit = entries.empty() ? eqMemo_.erase(eit) : std::next(eit);
  }
  // Cached cones may reference purged encodings; recompute lazily.
  ++blastEpoch_;
}

void BitBlaster::addConeRange(uint32_t begin, uint32_t end) {
  // The entry's own mask doubles as the dedup filter here (node var ranges
  // nest, so overlaps are common) and as the solver's propagation filter at
  // solve time (see coneMask()).
  std::vector<uint8_t>& mask = activeCone_->mask;
  for (uint32_t v = begin; v < end; ++v) {
    if (!mask[v]) {
      mask[v] = 1;
      activeCone_->vars.push_back(v);
    }
  }
}

void BitBlaster::collectCone(ExprRef e) {
  ConeCacheEntry& entry = coneCache_[e.id];
  activeCone_ = &entry;
  if (entry.epoch == blastEpoch_) return;
  entry.mask.assign(sink_.numVars(), 0);
  entry.vars.clear();
  entry.inputs.clear();
  ++visitEpoch_;
  visitStack_.clear();
  visitStack_.push_back(e.id);
  while (!visitStack_.empty()) {
    uint32_t id = visitStack_.back();
    visitStack_.pop_back();
    if (visitStamp_.size() <= id) visitStamp_.resize(id + 1, 0);
    if (visitStamp_[id] == visitEpoch_) continue;
    visitStamp_[id] = visitEpoch_;
    auto it = nodeInfo_.find(id);
    if (it == nodeInfo_.end()) continue;
    addConeRange(it->second.varBegin, it->second.varEnd);
    const ExprKind kind = arena_.node(ExprRef{id}).kind;
    if (kind == ExprKind::kVar || kind == ExprKind::kBoolVar) {
      // Var nodes have no children, so every variable they allocated is a
      // free input bit — the decision set of a split restricted solve.
      for (uint32_t v = it->second.varBegin; v < it->second.varEnd; ++v) {
        entry.inputs.push_back(v);
      }
    }
    for (uint32_t c : it->second.children) visitStack_.push_back(c);
  }
  entry.epoch = blastEpoch_;
}

void BitBlaster::extendCone(uint32_t fromVar) {
  // Only freshly allocated variables (eqConst gates) land here, so they
  // cannot already be in the cone; no dedup check needed. They join the
  // cached cone of the active expression, matching the memoized gates that
  // future probes of the same expression will reuse. Gates are forced by
  // propagation, never decided, so they extend vars (and the mask) but not
  // inputs.
  const uint32_t end = sink_.numVars();
  if (activeCone_->mask.size() < end) activeCone_->mask.resize(end, 0);
  for (uint32_t v = fromVar; v < end; ++v) {
    activeCone_->mask[v] = 1;
    activeCone_->vars.push_back(v);
  }
}

Lit BitBlaster::eqConst(ExprRef e, const BitVec& value) {
  std::vector<EqMemoEntry>* entries = nullptr;
  if (incremental_) {
    entries = &eqMemo_[e.id];
    for (const EqMemoEntry& m : *entries) {
      if (m.value == value) return m.lit;
    }
  }
  const std::vector<Lit>& bits = blastBv(e);
  Lit acc = constLit(true);
  for (size_t i = 0; i < bits.size(); ++i) {
    acc = mkAnd(acc, value.bit(static_cast<uint32_t>(i)) ? bits[i] : ~bits[i]);
  }
  if (entries) {
    EqMemoEntry m;
    m.value = value;
    m.lit = acc;
    auto ni = nodeInfo_.find(e.id);
    if (ni != nodeInfo_.end()) m.groupDeps = ni->second.groupDeps;
    uint32_t gateGroup = sink_.activeGroup();
    if (gateGroup != 0) m.groupDeps.push_back(gateGroup);
    std::sort(m.groupDeps.begin(), m.groupDeps.end());
    m.groupDeps.erase(std::unique(m.groupDeps.begin(), m.groupDeps.end()),
                      m.groupDeps.end());
    entries->push_back(std::move(m));
  }
  return acc;
}

const std::vector<Lit>& BitBlaster::blastBv(ExprRef e) {
  assert(!arena_.isBool(e) && "blastBv needs a bit-vector expression");
  noteChild(e);
  auto it = bvMemo_.find(e.id);
  if (it != bvMemo_.end()) return it->second;

  uint32_t varBegin = 0;
  uint32_t myGroup = 0;
  uint32_t prevGroup = 0;
  if (incremental_) {
    myGroup = groupFor(e);
    prevGroup = beginNode(myGroup, &varBegin);
  }
  const ExprNode& n = arena_.node(e);
  std::vector<Lit> bits;
  switch (n.kind) {
    case ExprKind::kBvConst: {
      const BitVec& v = arena_.constValue(e);
      bits.reserve(v.width());
      for (uint32_t i = 0; i < v.width(); ++i) bits.push_back(constLit(v.bit(i)));
      break;
    }
    case ExprKind::kVar: {
      bits.reserve(n.width);
      for (uint32_t i = 0; i < n.width; ++i) bits.push_back(freshLit());
      break;
    }
    case ExprKind::kAdd:
      bits = addBits(blastBv(ExprRef{n.a}), blastBv(ExprRef{n.b}),
                     constLit(false));
      break;
    case ExprKind::kSub: {
      std::vector<Lit> rhs = blastBv(ExprRef{n.b});
      for (auto& l : rhs) l = ~l;
      bits = addBits(blastBv(ExprRef{n.a}), rhs, constLit(true));
      break;
    }
    case ExprKind::kMul:
      bits = mulBits(blastBv(ExprRef{n.a}), blastBv(ExprRef{n.b}));
      break;
    case ExprKind::kUDiv:
      bits = divremBits(blastBv(ExprRef{n.a}), blastBv(ExprRef{n.b})).first;
      break;
    case ExprKind::kURem:
      bits = divremBits(blastBv(ExprRef{n.a}), blastBv(ExprRef{n.b})).second;
      break;
    case ExprKind::kAnd: {
      const auto& a = blastBv(ExprRef{n.a});
      const auto& b = blastBv(ExprRef{n.b});
      for (size_t i = 0; i < a.size(); ++i) bits.push_back(mkAnd(a[i], b[i]));
      break;
    }
    case ExprKind::kOr: {
      const auto& a = blastBv(ExprRef{n.a});
      const auto& b = blastBv(ExprRef{n.b});
      for (size_t i = 0; i < a.size(); ++i) bits.push_back(mkOr(a[i], b[i]));
      break;
    }
    case ExprKind::kXor: {
      const auto& a = blastBv(ExprRef{n.a});
      const auto& b = blastBv(ExprRef{n.b});
      for (size_t i = 0; i < a.size(); ++i) bits.push_back(mkXor(a[i], b[i]));
      break;
    }
    case ExprKind::kNot:
      for (Lit l : blastBv(ExprRef{n.a})) bits.push_back(~l);
      break;
    case ExprKind::kNeg:
      bits = negBits(blastBv(ExprRef{n.a}));
      break;
    case ExprKind::kShl: {
      const auto& a = blastBv(ExprRef{n.a});
      bits.assign(a.size(), constLit(false));
      for (size_t i = n.b; i < a.size(); ++i) bits[i] = a[i - n.b];
      break;
    }
    case ExprKind::kLShr: {
      const auto& a = blastBv(ExprRef{n.a});
      bits.assign(a.size(), constLit(false));
      for (size_t i = 0; i + n.b < a.size(); ++i) bits[i] = a[i + n.b];
      break;
    }
    case ExprKind::kExtract: {
      const auto& a = blastBv(ExprRef{n.a});
      bits.assign(a.begin() + n.c, a.begin() + n.b + 1);
      break;
    }
    case ExprKind::kZExt: {
      bits = blastBv(ExprRef{n.a});
      bits.resize(n.width, constLit(false));
      break;
    }
    case ExprKind::kConcat: {
      bits = blastBv(ExprRef{n.b});  // low part first (LSB order)
      const auto& hi = blastBv(ExprRef{n.a});
      bits.insert(bits.end(), hi.begin(), hi.end());
      break;
    }
    case ExprKind::kIte: {
      Lit cond = blastBool(ExprRef{n.a});
      const auto& t = blastBv(ExprRef{n.b});
      const auto& f = blastBv(ExprRef{n.c});
      for (size_t i = 0; i < t.size(); ++i) {
        bits.push_back(mkMux(cond, t[i], f[i]));
      }
      break;
    }
    default:
      throw std::logic_error("blastBv: unexpected node kind");
  }
  assert(bits.size() == n.width);
  if (incremental_) finishNode(e, varBegin, myGroup, prevGroup);
  return bvMemo_.emplace(e.id, std::move(bits)).first->second;
}

Lit BitBlaster::blastBool(ExprRef e) {
  assert(arena_.isBool(e) && "blastBool needs a boolean expression");
  noteChild(e);
  auto it = boolMemo_.find(e.id);
  if (it != boolMemo_.end()) return it->second;

  uint32_t varBegin = 0;
  uint32_t myGroup = 0;
  uint32_t prevGroup = 0;
  if (incremental_) {
    myGroup = groupFor(e);
    prevGroup = beginNode(myGroup, &varBegin);
  }
  const ExprNode& n = arena_.node(e);
  Lit result;
  switch (n.kind) {
    case ExprKind::kBoolConst:
      result = constLit(n.a == 1);
      break;
    case ExprKind::kBoolVar:
      result = freshLit();
      break;
    case ExprKind::kEq: {
      ExprRef a{n.a};
      if (arena_.isBool(a)) {
        result = mkXnor(blastBool(a), blastBool(ExprRef{n.b}));
      } else {
        result = eqBits(blastBv(a), blastBv(ExprRef{n.b}));
      }
      break;
    }
    case ExprKind::kUlt:
      result = ultBits(blastBv(ExprRef{n.a}), blastBv(ExprRef{n.b}));
      break;
    case ExprKind::kUle:
      result = ~ultBits(blastBv(ExprRef{n.b}), blastBv(ExprRef{n.a}));
      break;
    case ExprKind::kBAnd:
      result = mkAnd(blastBool(ExprRef{n.a}), blastBool(ExprRef{n.b}));
      break;
    case ExprKind::kBOr:
      result = mkOr(blastBool(ExprRef{n.a}), blastBool(ExprRef{n.b}));
      break;
    case ExprKind::kBNot:
      result = ~blastBool(ExprRef{n.a});
      break;
    case ExprKind::kIte:
      result = mkMux(blastBool(ExprRef{n.a}), blastBool(ExprRef{n.b}),
                     blastBool(ExprRef{n.c}));
      break;
    default:
      throw std::logic_error("blastBool: unexpected node kind");
  }
  if (incremental_) finishNode(e, varBegin, myGroup, prevGroup);
  boolMemo_.emplace(e.id, result);
  return result;
}

BitVec BitBlaster::bvModelValue(ExprRef e) const {
  const auto& bits = bvMemo_.at(e.id);
  BitVec v = BitVec::zero(static_cast<uint32_t>(bits.size()));
  for (size_t i = 0; i < bits.size(); ++i) {
    bool bit = sink_.modelValue(bits[i].var());
    if (bits[i].negated()) bit = !bit;
    if (bit) {
      v = v.bitOr(BitVec::one(v.width()).shl(static_cast<uint32_t>(i)));
    }
  }
  return v;
}

bool BitBlaster::boolModelValue(ExprRef e) const {
  Lit l = boolMemo_.at(e.id);
  bool bit = sink_.modelValue(l.var());
  return l.negated() ? !bit : bit;
}

}  // namespace flay::smt
