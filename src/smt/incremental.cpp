#include "smt/incremental.h"

#include <array>
#include <optional>
#include <unordered_set>

#include "expr/traverse.h"
#include "obs/obs.h"
#include "smt/internal_obs.h"

namespace flay::smt {

using expr::ExprRef;
using internal::PhaseTimer;
using internal::SmtObs;

ProbeSession::ProbeSession(const expr::ExprArena& arena,
                           ProbeSessionOptions options)
    : arena_(arena), options_(options) {
  rebuild();
  rebuilds_ = 0;  // the initial warm-up is not a rebuild
}

void ProbeSession::rebuild() {
  session_ = std::make_unique<sat::SolverSession>();
  blaster_ = std::make_unique<BitBlaster>(arena_, *session_);
  blaster_->enableIncremental(watermark_);
  scopeGroups_.clear();
  ++rebuilds_;
}

void ProbeSession::setNodeWatermark(uint32_t nodeId) {
  if (nodeId > watermark_) {
    watermark_ = nodeId;
    blaster_->setPermanentWatermark(watermark_);
  }
}

void ProbeSession::maybeRebuild() {
  const sat::Solver& s = session_->solver();
  if (s.numVars() > options_.maxVars || s.numClauses() > options_.maxClauses) {
    rebuild();
    SmtObs::get().sessionRebuilds.add(1);
  }
}

uint32_t ProbeSession::groupForScope(const std::string& scope) {
  auto it = scopeGroups_.find(scope);
  if (it != scopeGroups_.end()) return it->second;
  uint32_t g = session_->openGroup();
  scopeGroups_.emplace(scope, g);
  SmtObs::get().groupsOpened.add(1);
  return g;
}

void ProbeSession::retireScope(const std::string& scope) {
  auto it = scopeGroups_.find(scope);
  if (it == scopeGroups_.end()) return;
  session_->retireGroup(it->second);
  blaster_->purgeGroup(it->second);
  scopeGroups_.erase(it);
  SmtObs::get().groupsRetired.add(1);
}

const std::vector<ExprRef>& ProbeSession::supportVars(ExprRef e) {
  auto it = supportCache_.find(e.id);
  if (it != supportCache_.end()) return it->second;
  std::vector<ExprRef> vars;
  std::unordered_set<uint32_t> seen{e.id};
  std::vector<uint32_t> stack{e.id};
  while (!stack.empty()) {
    uint32_t id = stack.back();
    stack.pop_back();
    const expr::ExprNode& n = arena_.node(ExprRef{id});
    if (n.kind == expr::ExprKind::kVar ||
        n.kind == expr::ExprKind::kBoolVar) {
      vars.push_back(ExprRef{id});
      continue;
    }
    uint32_t kids[3];
    int numKids = expr::children(n, kids);
    for (int i = 0; i < numKids; ++i) {
      if (seen.insert(kids[i]).second) stack.push_back(kids[i]);
    }
  }
  return supportCache_.emplace(e.id, std::move(vars)).first->second;
}

std::vector<std::pair<uint32_t, expr::Value>> ProbeSession::readSupportModel(
    ExprRef e) {
  std::vector<std::pair<uint32_t, expr::Value>> bindings;
  const std::vector<ExprRef>& vars = supportVars(e);
  bindings.reserve(vars.size());
  for (ExprRef x : vars) {
    const expr::ExprNode& n = arena_.node(x);
    if (n.kind == expr::ExprKind::kBoolVar) {
      bindings.emplace_back(n.a, expr::Value{blaster_->boolModelValue(x)});
    } else {
      bindings.emplace_back(n.a, expr::Value{blaster_->bvModelValue(x)});
    }
  }
  return bindings;
}

bool ProbeSession::tryWitness(ExprRef e, ConstantProbe* out) {
  auto it = witnesses_.find(e.id);
  if (it == witnesses_.end()) return false;
  SmtObs& o = SmtObs::get();
  obs::ScopedTimer timer(o.checkUs, "smt.probe_incremental");
  const Witness& w = it->second;
  eval_.clear();
  for (const auto& [sym, val] : w.a) eval_.bind(sym, val);
  std::optional<expr::Value> u = eval_.tryEvaluate(e);
  eval_.clear();
  for (const auto& [sym, val] : w.b) eval_.bind(sym, val);
  std::optional<expr::Value> v = eval_.tryEvaluate(e);
  if (!u || !v || *u == *v) {
    // The pair no longer discriminates. Impossible for a pure hash-consed
    // expression — kept as a correctness valve: drop the witness and let
    // the solver decide.
    witnesses_.erase(it);
    return false;
  }
  o.witnessVerdicts.add(1);
  out->notConstant = true;
  return true;
}

bool ProbeSession::tryProbe(ExprRef e, const std::string& scope,
                            uint64_t maxConflicts, ConstantProbe* out) {
  SmtObs& o = SmtObs::get();
  obs::ScopedTimer timer(o.checkUs, "smt.probe_incremental");
  PhaseTimer phases;
  session_->setConflictBudget(maxConflicts);
  uint32_t group = groupForScope(scope);
  blaster_->setCurrentGroup(group);
  // Per-probe eqConst gates (below) are emitted outside any tracked node;
  // routing them into the scope's group retires them with the scope.
  session_->setActiveGroup(group);

  if (arena_.isBool(e)) {
    sat::Lit l;
    {
      auto t = phases.encode();
      l = blaster_->blastBool(e);
      blaster_->collectCone(e);
    }
    if (auto kc = knownValues_.find(e.id); kc != knownValues_.end()) {
      // Steady state for a constant point: one UNSAT solve against the
      // remembered polarity instead of two model searches.
      const bool kv = std::get<bool>(kc->second);
      sat::Result other;
      {
        auto t = phases.solve();
        other = session_->solveRestricted(std::array{kv ? ~l : l},
                                          blaster_->decisionCone(),
                                          blaster_->coneMask());
      }
      if (other == sat::Result::kUnsat) {
        o.rememberedConstants.add(1);
        out->constant = true;
        out->boolValue = kv;
        return true;
      }
      // kSat would contradict the remembered proof (impossible for a pure
      // expression); kUnknown means the re-proof ran out of budget. Either
      // way forget the memo and take the fresh fallback.
      knownValues_.erase(kc);
      return false;
    }
    sat::Result asTrue, asFalse;
    {
      auto t = phases.solve();
      asTrue = session_->solveRestricted(
          std::array{l}, blaster_->decisionCone(), blaster_->coneMask());
    }
    if (asTrue == sat::Result::kUnknown) return false;
    // Capture the true-side witness now; the false-side solve below
    // overwrites the model.
    std::vector<std::pair<uint32_t, expr::Value>> whenTrue;
    if (asTrue == sat::Result::kSat) whenTrue = readSupportModel(e);
    {
      auto t = phases.solve();
      asFalse = session_->solveRestricted(
          std::array{~l}, blaster_->decisionCone(), blaster_->coneMask());
    }
    if (asFalse == sat::Result::kUnknown) return false;
    bool canBeTrue = asTrue == sat::Result::kSat;
    bool canBeFalse = asFalse == sat::Result::kSat;
    if (canBeTrue && canBeFalse) {
      witnesses_[e.id] = Witness{std::move(whenTrue), readSupportModel(e)};
      out->notConstant = true;
    } else {
      out->constant = true;
      out->boolValue = canBeTrue;
      knownValues_[e.id] = canBeTrue;
    }
    return true;
  }

  {
    auto t = phases.encode();
    blaster_->blastBv(e);
    blaster_->collectCone(e);
  }
  BitVec v;
  std::vector<std::pair<uint32_t, expr::Value>> whenEqual;
  bool remembered = false;
  if (auto kc = knownValues_.find(e.id); kc != knownValues_.end()) {
    // Steady state for a constant point: skip the model run and refute
    // disequality with the remembered value directly (its eqConst gates are
    // an encoding memo hit, so this emits no clauses).
    v = std::get<BitVec>(kc->second);
    remembered = true;
  } else {
    sat::Result modelRun;
    {
      auto t = phases.solve();
      modelRun = session_->solveRestricted({}, blaster_->decisionCone(),
                                           blaster_->coneMask());
    }
    if (modelRun == sat::Result::kUnknown) return false;
    if (modelRun != sat::Result::kSat) {
      // Unreachable in a consistent encoding, but be conservative.
      out->notConstant = true;
      return true;
    }
    v = blaster_->bvModelValue(e);
    // Capture the first witness now; the differs solve below overwrites
    // the model.
    whenEqual = readSupportModel(e);
  }
  uint32_t varsBeforeEq = session_->numVars();
  sat::Lit same;
  {
    auto t = phases.encode();
    same = blaster_->eqConst(e, v);
    // The eq gates reference only e's bits (already in the cone) plus the
    // fresh gate variables allocated just now.
    blaster_->extendCone(varsBeforeEq);
  }
  sat::Result differs;
  {
    auto t = phases.solve();
    differs = session_->solveRestricted(
        std::array{~same}, blaster_->decisionCone(), blaster_->coneMask());
  }
  if (differs == sat::Result::kUnknown) return false;
  if (differs == sat::Result::kSat) {
    if (remembered) {
      // Contradicts the remembered constant proof — impossible for a pure
      // expression. Forget it and let the fresh fallback decide.
      knownValues_.erase(e.id);
      return false;
    }
    witnesses_[e.id] = Witness{std::move(whenEqual), readSupportModel(e)};
    out->notConstant = true;
  } else {
    if (remembered) {
      o.rememberedConstants.add(1);
    } else {
      knownValues_[e.id] = v;
    }
    out->constant = true;
    out->value = std::move(v);
  }
  return true;
}

ConstantProbe ProbeSession::probe(ExprRef e, const std::string& scope,
                                  uint64_t maxConflicts) {
  SmtObs& o = SmtObs::get();
  ConstantProbe result;
  if (arena_.isConst(e)) {
    o.foldedQueries.add(1);
    result.constant = true;
    if (arena_.isBool(e)) {
      result.boolValue = arena_.isTrue(e);
    } else {
      result.value = arena_.constValue(e);
    }
    return result;
  }
  o.constantQueries.add(1);
  o.incrementalProbes.add(1);
  // Standing disproof of constancy: two remembered input valuations that
  // evaluate differently settle the probe with zero solver work.
  if (tryWitness(e, &result)) return result;
  maybeRebuild();
  if (tryProbe(e, scope, maxConflicts, &result)) return result;
  // A warm solve ran out of budget. Fall back to a fresh single-probe solver
  // with the same budget so the timeout behavior (and hence the verdict) is
  // exactly what the non-incremental path would produce.
  ++fallbacks_;
  o.incrementalFallbacks.add(1);
  return probeConstant(arena_, e, maxConflicts);
}

}  // namespace flay::smt
