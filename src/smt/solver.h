#ifndef FLAY_SMT_SOLVER_H
#define FLAY_SMT_SOLVER_H

#include <memory>
#include <optional>

#include "expr/arena.h"
#include "sat/solver.h"
#include "smt/bitblaster.h"

namespace flay::smt {

/// kUnknown surfaces a SAT-level conflict-budget exhaustion (fail-safe solver
/// deadline). Callers must treat it conservatively: a specialization decision
/// gated on an unknown query must take the general (recompile) path, never
/// the constant-fold fast path.
enum class CheckResult { kSat, kUnsat, kUnknown };

/// QF_BV satisfiability facade: assert boolean expressions, check, read back
/// a model. One instance owns one SAT solver; assertions accumulate.
/// This is the drop-in replacement for the Z3 queries Flay issues.
class SmtSolver {
 public:
  explicit SmtSolver(const expr::ExprArena& arena);
  ~SmtSolver();

  SmtSolver(const SmtSolver&) = delete;
  SmtSolver& operator=(const SmtSolver&) = delete;

  void assertExpr(expr::ExprRef boolExpr);
  CheckResult check();

  /// Fail-safe deadline forwarded to the underlying SAT solver: each check()
  /// may spend at most this many conflicts (0 = unlimited) before returning
  /// CheckResult::kUnknown.
  void setConflictBudget(uint64_t maxConflictsPerCheck);

  /// Model value of a bit-vector variable after a kSat check. Variables that
  /// never appeared in an assertion get value zero.
  BitVec modelValue(expr::ExprRef var);
  bool modelValueBool(expr::ExprRef var);

  uint64_t numConflicts() const;

 private:
  const expr::ExprArena& arena_;
  std::unique_ptr<sat::Solver> sat_;
  std::unique_ptr<BitBlaster> blaster_;
};

/// True iff `boolExpr` is satisfiable (some packet/config makes it true).
bool isSatisfiable(const expr::ExprArena& arena, expr::ExprRef boolExpr);

/// True iff `boolExpr` holds for every assignment.
bool isValid(const expr::ExprArena& arena, expr::ExprRef boolExpr);

/// Budgeted variants: each underlying SAT query may spend at most
/// `maxConflicts` conflicts (0 = unlimited). nullopt means the deadline
/// expired with neither answer proven — the caller must fall back to its
/// conservative path.
std::optional<bool> isSatisfiableWithin(const expr::ExprArena& arena,
                                        expr::ExprRef boolExpr,
                                        uint64_t maxConflicts);
std::optional<bool> isValidWithin(const expr::ExprArena& arena,
                                  expr::ExprRef boolExpr,
                                  uint64_t maxConflicts);

/// True iff `a` and `b` agree on every assignment. Because the arena
/// hash-conses, `a == b` is checked first and the solver only runs on
/// structurally different expressions.
bool areEquivalent(expr::ExprArena& arena, expr::ExprRef a, expr::ExprRef b);

/// If `e` evaluates to the same value under every assignment, returns that
/// value as a constant expression; otherwise returns nullopt. This is Flay's
/// "can we replace this program variable with a constant?" query.
std::optional<expr::ExprRef> constantValue(expr::ExprArena& arena,
                                           expr::ExprRef e);

/// Budgeted constantValue: nullopt either means "provably not constant" or,
/// when `*timedOut` is set, "the deadline expired before the question was
/// settled". Both map to the same conservative caller behavior (keep the
/// general implementation); the flag exists for telemetry and tests.
std::optional<expr::ExprRef> constantValueWithin(expr::ExprArena& arena,
                                                 expr::ExprRef e,
                                                 uint64_t maxConflicts,
                                                 bool* timedOut = nullptr);

/// Outcome of probeConstant(). At most one of `constant`/`notConstant`/
/// `timedOut` interesting states holds: constant carries the proven value
/// (boolValue for boolean sorts, value otherwise); notConstant means two
/// differing models were exhibited; timedOut means the conflict budget
/// expired with the question unsettled (callers treat it like notConstant,
/// conservatively, but must not cache it).
struct ConstantProbe {
  bool constant = false;
  bool notConstant = false;
  bool timedOut = false;
  bool boolValue = false;
  BitVec value;
};

/// Arena-const variant of constantValueWithin: proves or refutes the
/// constantness of `e` without interning any node. The candidate-equality
/// check is asserted at the SAT level (BitBlaster::eqConst) instead of via
/// arena.eq, so many probes may run concurrently over one immutable arena —
/// the foundation of the parallel semantics-check engine. Each probe builds
/// its own solver; `maxConflicts` (0 = unlimited) bounds every underlying
/// SAT call separately, like constantValueWithin.
ConstantProbe probeConstant(const expr::ExprArena& arena, expr::ExprRef e,
                            uint64_t maxConflicts);

}  // namespace flay::smt

#endif  // FLAY_SMT_SOLVER_H
