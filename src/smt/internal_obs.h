#ifndef FLAY_SMT_INTERNAL_OBS_H
#define FLAY_SMT_INTERNAL_OBS_H

#include <chrono>

#include "obs/obs.h"

// Telemetry handles shared by the SMT facade (solver.cpp) and the
// incremental probe session (incremental.cpp). Internal to src/smt/ — both
// paths must report into the *same* counters so flayc --stats output is
// identical whichever path answered a probe.

namespace flay::smt::internal {

/// Telemetry for the queries Flay issues instead of Z3 calls. The SAT layer
/// below reports its own conflict/propagation counters; these count at the
/// query granularity of §3's analysis.
struct SmtObs {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& checks = reg.counter("smt.checks");
  obs::Counter& satResults = reg.counter("smt.sat_results");
  obs::Counter& unsatResults = reg.counter("smt.unsat_results");
  obs::Counter& unknownResults = reg.counter("smt.unknown_results");
  obs::Counter& validQueries = reg.counter("smt.valid_queries");
  obs::Counter& constantQueries = reg.counter("smt.constant_queries");
  obs::Counter& foldedQueries = reg.counter("smt.folded_queries");
  obs::Histogram& checkUs = reg.histogram("smt.check_us");
  // Encode (Tseitin emission) vs solve (CDCL search) wall time per probe:
  // the two components folded into checkUs, reported separately so the
  // incremental path's encode savings are attributable.
  obs::Histogram& encodeUs = reg.histogram("smt.encode_us");
  obs::Histogram& solveUs = reg.histogram("smt.solve_us");
  // Incremental-session accounting.
  obs::Counter& incrementalProbes = reg.counter("smt.incremental_probes");
  obs::Counter& incrementalFallbacks =
      reg.counter("smt.incremental_fallbacks");
  // Probes settled by concrete re-evaluation of a remembered witness pair
  // (no solver work at all).
  obs::Counter& witnessVerdicts = reg.counter("smt.witness_verdicts");
  // Constant points re-proven by a single UNSAT solve against their
  // remembered value.
  obs::Counter& rememberedConstants =
      reg.counter("smt.remembered_constants");
  obs::Counter& groupsOpened = reg.counter("smt.groups_opened");
  obs::Counter& groupsRetired = reg.counter("smt.groups_retired");
  obs::Counter& sessionRebuilds = reg.counter("smt.session_rebuilds");

  static SmtObs& get() {
    static SmtObs instance;
    return instance;
  }
};

/// Accumulates encode-vs-solve wall time within one probe and flushes both
/// into the registry on destruction.
class PhaseTimer {
 public:
  PhaseTimer() = default;
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;
  ~PhaseTimer() {
    SmtObs& o = SmtObs::get();
    o.encodeUs.record(encodeUs_);
    o.solveUs.record(solveUs_);
  }

  class Scope {
   public:
    explicit Scope(uint64_t& acc)
        : acc_(acc), start_(std::chrono::steady_clock::now()) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() {
      acc_ += static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start_)
              .count());
    }

   private:
    uint64_t& acc_;
    std::chrono::steady_clock::time_point start_;
  };

  Scope encode() { return Scope(encodeUs_); }
  Scope solve() { return Scope(solveUs_); }

 private:
  uint64_t encodeUs_ = 0;
  uint64_t solveUs_ = 0;
};

}  // namespace flay::smt::internal

#endif  // FLAY_SMT_INTERNAL_OBS_H
