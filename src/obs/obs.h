#ifndef FLAY_OBS_OBS_H
#define FLAY_OBS_OBS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace flay::obs {

/// Named monotonic counter. add() is a relaxed atomic increment; callers on
/// hot paths cache the reference returned by Registry::counter() instead of
/// looking it up per event.
class Counter {
 public:
  void add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Log-bucketed histogram for latency-like values (microseconds by
/// convention). Values below 8 get exact buckets; above that, each power of
/// two is split into 4 linear sub-buckets, bounding the relative quantile
/// error at ~12.5% while covering the full uint64 range in 256 buckets.
class Histogram {
 public:
  static constexpr uint32_t kNumBuckets = 256;

  void record(uint64_t value);
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Smallest/largest recorded value (0 when empty).
  uint64_t min() const;
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  /// Quantile estimate for q in [0, 1], as the midpoint of the bucket
  /// containing the q-th sample. Returns 0 when empty.
  uint64_t quantile(double q) const;
  void reset();

  static uint32_t bucketFor(uint64_t value);
  /// Representative (midpoint) value of a bucket, inverse of bucketFor.
  static uint64_t bucketMid(uint32_t bucket);

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// Point-in-time view of one histogram, with the quantiles pre-extracted.
struct HistogramStats {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
};

/// Point-in-time view of the whole registry. Serializable as JSON:
///   {"counters":{"name":N,...},
///    "histograms":{"name":{"count":..,"sum":..,"min":..,"max":..,
///                          "p50":..,"p95":..,"p99":..},...}}
struct Snapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, HistogramStats>> histograms;

  std::string toJson() const;
  /// Human-readable table (counters first, then histograms).
  std::string toText() const;
};

/// Process-global registry of counters and histograms plus an optional JSONL
/// trace-event sink. Handles returned by counter()/histogram() stay valid for
/// the process lifetime; reset() zeroes values but never invalidates handles.
class Registry {
 public:
  /// The process-global instance (leaked intentionally so handles cached in
  /// static storage never dangle during shutdown).
  static Registry& global();

  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);

  Snapshot snapshot() const;
  std::string toJson() const { return snapshot().toJson(); }
  void reset();

  /// Opens a JSONL trace sink; every ScopedTimer then appends one
  /// {"name":...,"ts":...,"dur":...} line (timestamps in microseconds since
  /// registry creation). Returns false if the file cannot be opened.
  bool openTrace(const std::string& path);
  void closeTrace();
  bool tracingEnabled() const {
    return traceFile_.load(std::memory_order_acquire) != nullptr;
  }
  void traceEvent(const char* name, uint64_t startUs, uint64_t durUs);

  /// Microseconds since registry creation (the trace timebase).
  uint64_t nowMicros() const;

 private:
  Registry();

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::atomic<std::FILE*> traceFile_{nullptr};
  std::mutex traceMu_;
  std::chrono::steady_clock::time_point origin_;
};

/// RAII scoped timer: records the elapsed microseconds into a histogram on
/// destruction and, when tracing is on, appends a trace event. `traceName`
/// must outlive the timer (string literals in practice).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist, const char* traceName = nullptr)
      : hist_(&hist),
        traceName_(traceName),
        start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer();

  uint64_t elapsedMicros() const;

 private:
  Histogram* hist_;
  const char* traceName_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace flay::obs

#endif  // FLAY_OBS_OBS_H
