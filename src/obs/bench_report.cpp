#include "obs/bench_report.h"

#include <cstdio>
#include <cstdlib>

#include "obs/obs.h"

namespace flay::obs {

void writeBenchReport(
    const std::string& benchName,
    const std::vector<std::pair<std::string, double>>& metrics) {
  Snapshot snap = Registry::global().snapshot();
  std::string stats = snap.toJson();  // {"counters":{...},"histograms":{...}}
  std::string doc = "{\"schema\":\"flay-bench-stats-v1\",\"bench\":\"" +
                    benchName + "\",\"metrics\":{";
  bool first = true;
  for (const auto& [name, value] : metrics) {
    if (!first) doc += ',';
    first = false;
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    doc += "\"" + name + "\":" + buf;
  }
  // Splice the snapshot's two top-level members into this document.
  doc += "}," + stats.substr(1);

  std::printf("\nBENCH_JSON %s\n", doc.c_str());

  const char* dir = std::getenv("FLAY_BENCH_OUT_DIR");
  std::string path = (dir != nullptr && dir[0] != '\0')
                         ? std::string(dir) + "/BENCH_" + benchName + ".json"
                         : "BENCH_" + benchName + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "%s\n", doc.c_str());
  std::fclose(f);
}

}  // namespace flay::obs
