#ifndef FLAY_OBS_BENCH_REPORT_H
#define FLAY_OBS_BENCH_REPORT_H

#include <string>
#include <utility>
#include <vector>

namespace flay::obs {

/// Emits a bench's machine-readable stats block: prints one
/// `BENCH_JSON {...}` line to stdout and writes the same document to
/// `BENCH_<name>.json` in $FLAY_BENCH_OUT_DIR (default: the current working
/// directory). The document merges the bench's headline metrics with the
/// global registry snapshot:
///   {"schema":"flay-bench-stats-v1","bench":<name>,
///    "metrics":{...},"counters":{...},"histograms":{...}}
void writeBenchReport(
    const std::string& benchName,
    const std::vector<std::pair<std::string, double>>& metrics);

}  // namespace flay::obs

#endif  // FLAY_OBS_BENCH_REPORT_H
