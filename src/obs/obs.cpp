#include "obs/obs.h"

#include <bit>
#include <cinttypes>

namespace flay::obs {

// ---------------------------------------------------------------------------
// Histogram

uint32_t Histogram::bucketFor(uint64_t value) {
  if (value < 8) return static_cast<uint32_t>(value);
  uint32_t msb = 63 - static_cast<uint32_t>(std::countl_zero(value));
  uint32_t sub = static_cast<uint32_t>((value >> (msb - 2)) & 0x3);
  return 8 + (msb - 3) * 4 + sub;
}

uint64_t Histogram::bucketMid(uint32_t bucket) {
  if (bucket < 8) return bucket;
  uint32_t msb = 3 + (bucket - 8) / 4;
  uint32_t sub = (bucket - 8) % 4;
  uint64_t low = (uint64_t{1} << msb) + (static_cast<uint64_t>(sub) << (msb - 2));
  return low + (uint64_t{1} << (msb - 2)) / 2;
}

void Histogram::record(uint64_t value) {
  buckets_[bucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t prev = min_.load(std::memory_order_relaxed);
  while (value < prev &&
         !min_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
  prev = max_.load(std::memory_order_relaxed);
  while (value > prev &&
         !max_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::min() const {
  uint64_t m = min_.load(std::memory_order_relaxed);
  return m == UINT64_MAX ? 0 : m;
}

uint64_t Histogram::quantile(double q) const {
  uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // The extremes are tracked exactly — answer them without bucket rounding.
  // (A two-bucket histogram would otherwise report q=0 as the first bucket's
  // midpoint, which can exceed the true minimum.)
  if (q == 0.0) return min();
  if (q == 1.0) return max();
  // Rank of the q-th sample, 1-based.
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(n - 1)) + 1;
  uint64_t seen = 0;
  for (uint32_t b = 0; b < kNumBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= target) {
      // Exact buckets report their exact value; clamp to observed extremes so
      // single-bucket distributions report sensible numbers.
      uint64_t mid = bucketMid(b);
      if (mid < min()) mid = min();
      if (mid > max()) mid = max();
      return mid;
    }
  }
  return max();
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Snapshot serialization

namespace {

void appendJsonString(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string Snapshot::toJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ',';
    first = false;
    appendJsonString(out, name);
    out += ':' + std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ',';
    first = false;
    appendJsonString(out, name);
    out += ":{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + std::to_string(h.sum) +
           ",\"min\":" + std::to_string(h.min) +
           ",\"max\":" + std::to_string(h.max) +
           ",\"p50\":" + std::to_string(h.p50) +
           ",\"p95\":" + std::to_string(h.p95) +
           ",\"p99\":" + std::to_string(h.p99) + "}";
  }
  out += "}}";
  return out;
}

std::string Snapshot::toText() const {
  std::string out;
  char line[256];
  if (!counters.empty()) out += "counters:\n";
  for (const auto& [name, value] : counters) {
    std::snprintf(line, sizeof line, "  %-40s %12" PRIu64 "\n", name.c_str(),
                  value);
    out += line;
  }
  if (!histograms.empty()) {
    out +=
        "histograms (us):\n"
        "  name                                            count     "
        "p50     p95     p99     max\n";
  }
  for (const auto& [name, h] : histograms) {
    std::snprintf(line, sizeof line,
                  "  %-40s %12" PRIu64 " %7" PRIu64 " %7" PRIu64 " %7" PRIu64
                  " %7" PRIu64 "\n",
                  name.c_str(), h.count, h.p50, h.p95, h.p99, h.max);
    out += line;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Registry

Registry::Registry() : origin_(std::chrono::steady_clock::now()) {}

Registry& Registry::global() {
  // Leaked on purpose: timers and cached counter references in other
  // translation units may still fire during static destruction.
  static Registry* instance = new Registry();
  return *instance;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramStats s;
    s.count = h->count();
    s.sum = h->sum();
    s.min = h->min();
    s.max = h->max();
    s.p50 = h->quantile(0.50);
    s.p95 = h->quantile(0.95);
    s.p99 = h->quantile(0.99);
    snap.histograms.emplace_back(name, s);
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

bool Registry::openTrace(const std::string& path) {
  closeTrace();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::lock_guard<std::mutex> lock(traceMu_);
  traceFile_.store(f, std::memory_order_release);
  return true;
}

void Registry::closeTrace() {
  std::lock_guard<std::mutex> lock(traceMu_);
  std::FILE* f = traceFile_.exchange(nullptr, std::memory_order_acq_rel);
  if (f != nullptr) std::fclose(f);
}

void Registry::traceEvent(const char* name, uint64_t startUs, uint64_t durUs) {
  std::lock_guard<std::mutex> lock(traceMu_);
  std::FILE* f = traceFile_.load(std::memory_order_acquire);
  if (f == nullptr) return;
  std::fprintf(f,
               "{\"name\":\"%s\",\"ts\":%" PRIu64 ",\"dur\":%" PRIu64 "}\n",
               name, startUs, durUs);
}

uint64_t Registry::nowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - origin_)
          .count());
}

// ---------------------------------------------------------------------------
// ScopedTimer

uint64_t ScopedTimer::elapsedMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

ScopedTimer::~ScopedTimer() {
  uint64_t us = elapsedMicros();
  hist_->record(us);
  if (traceName_ != nullptr) {
    Registry& reg = Registry::global();
    if (reg.tracingEnabled()) {
      uint64_t end = reg.nowMicros();
      reg.traceEvent(traceName_, end >= us ? end - us : 0, us);
    }
  }
}

}  // namespace flay::obs
