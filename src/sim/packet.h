#ifndef FLAY_SIM_PACKET_H
#define FLAY_SIM_PACKET_H

#include <cstdint>
#include <vector>

#include "support/bitvec.h"

namespace flay::sim {

/// A raw packet entering or leaving the simulated switch.
struct Packet {
  std::vector<uint8_t> bytes;
  uint32_t ingressPort = 0;
};

/// MSB-first bit cursor over a byte buffer, the extraction order P4 parsers
/// use on the wire.
class BitReader {
 public:
  explicit BitReader(const std::vector<uint8_t>& bytes) : bytes_(&bytes) {}

  /// Reads `width` bits into a BitVec; returns false if the buffer is
  /// exhausted (partial reads consume nothing).
  bool read(uint32_t width, BitVec& out);

  size_t bitPosition() const { return bitPos_; }
  size_t bitsRemaining() const {
    size_t total = bytes_->size() * 8;
    return bitPos_ >= total ? 0 : total - bitPos_;
  }

 private:
  const std::vector<uint8_t>* bytes_;
  size_t bitPos_ = 0;
};

/// MSB-first bit appender used by the deparser.
class BitWriter {
 public:
  void write(const BitVec& value);
  /// Pads the final partial byte with zeroes and returns the buffer.
  std::vector<uint8_t> finish();
  size_t bitCount() const { return bitPos_; }

 private:
  std::vector<uint8_t> bytes_;
  size_t bitPos_ = 0;
};

}  // namespace flay::sim

#endif  // FLAY_SIM_PACKET_H
