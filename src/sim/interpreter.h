#ifndef FLAY_SIM_INTERPRETER_H
#define FLAY_SIM_INTERPRETER_H

#include <map>
#include <string>
#include <variant>

#include "runtime/device_config.h"
#include "sim/packet.h"
#include "sim/state.h"

namespace flay::sim {

/// Outcome of pushing one packet through the pipeline.
struct ExecResult {
  bool parserAccepted = true;
  bool dropped = false;
  uint32_t egressPort = 0;
  std::vector<uint8_t> outputBytes;
  /// Snapshot of every scalar location after the pipeline ran. Keys are
  /// canonical field names; validity bits appear as 0/1 width-1 vectors.
  std::map<std::string, BitVec> fields;

  const BitVec& field(const std::string& canonical) const {
    return fields.at(canonical);
  }
};

/// A BMv2-style software switch: interprets a checked P4-lite program on
/// concrete packets under a control-plane configuration. Used directly as
/// the execution substrate and by Flay's differential tests (original vs
/// specialized program must forward identically).
class Interpreter {
 public:
  /// All three references must outlive the interpreter.
  Interpreter(const p4::CheckedProgram& checked,
              const runtime::DeviceConfig& config, DataPlaneState& state);

  ExecResult process(const Packet& packet);

  /// Number of packets processed (for throughput accounting).
  uint64_t packetsProcessed() const { return packetsProcessed_; }

 private:
  struct Value {
    bool isBool = false;
    bool b = false;
    BitVec bv;
    static Value makeBool(bool v) { return {true, v, {}}; }
    static Value makeBv(BitVec v) { return {false, false, std::move(v)}; }
  };

  /// Execution environment: flattened fields plus scoped locals/params.
  struct Frame {
    std::map<std::string, Value> locals;   // apply-block locals
    std::map<std::string, Value> params;   // action parameters
    const p4::ControlDecl* control = nullptr;
    const p4::ParserDecl* parser = nullptr;
  };

  enum class Flow { kContinue, kExit };

  void initStore(const Packet& packet);
  bool runParser(const p4::ParserDecl& parser, BitReader& reader);
  void runControl(const p4::ControlDecl& control);
  void runDeparser(const p4::DeparserDecl& deparser, BitWriter& writer);

  Flow execStmts(const std::vector<p4::StmtPtr>& stmts, Frame& frame);
  Flow execStmt(const p4::Stmt& stmt, Frame& frame);
  void execApply(const p4::Stmt& stmt, Frame& frame);
  void execAction(const p4::ControlDecl& control, const std::string& name,
                  const std::vector<BitVec>& args, Frame& outer);
  /// Returns the next state name, or "accept"/"reject".
  std::string execTransition(const p4::TransitionInfo& t, Frame& frame);

  Value eval(const p4::Expr& e, Frame& frame);
  BitVec evalBv(const p4::Expr& e, Frame& frame);
  bool evalBool(const p4::Expr& e, Frame& frame);
  void assign(const p4::Expr& lhs, Value v, Frame& frame);
  Value& lookupMutable(const std::string& canonical, p4::PathKind kind,
                       Frame& frame);

  const p4::CheckedProgram& checked_;
  const runtime::DeviceConfig& config_;
  DataPlaneState& state_;
  std::map<std::string, Value> store_;  // canonical field -> value
  uint64_t packetsProcessed_ = 0;
};

}  // namespace flay::sim

#endif  // FLAY_SIM_INTERPRETER_H
