#include "sim/state.h"

#include <stdexcept>

namespace flay::sim {

DataPlaneState::DataPlaneState(const p4::CheckedProgram& checked) {
  for (const auto& control : checked.program.controls) {
    for (const auto& r : control.registers) {
      RegisterArray arr;
      arr.width = r.width;
      arr.cells.assign(r.size, BitVec::zero(r.width));
      registers_.emplace(control.name + "." + r.name, std::move(arr));
    }
    for (const auto& c : control.counters) {
      counters_.emplace(control.name + "." + c.name,
                        std::vector<uint64_t>(c.size, 0));
    }
    for (const auto& m : control.meters) {
      meters_.emplace(control.name + "." + m.name,
                      std::vector<uint32_t>(m.size, 0));
    }
  }
}

const DataPlaneState::RegisterArray& DataPlaneState::reg(
    const std::string& qualified) const {
  auto it = registers_.find(qualified);
  if (it == registers_.end()) {
    throw std::invalid_argument("unknown register '" + qualified + "'");
  }
  return it->second;
}

BitVec DataPlaneState::registerRead(const std::string& qualified,
                                    uint64_t index) const {
  const RegisterArray& arr = reg(qualified);
  // Out-of-range indices read zero, matching BMv2's forgiving behaviour.
  if (index >= arr.cells.size()) return BitVec::zero(arr.width);
  return arr.cells[index];
}

void DataPlaneState::registerWrite(const std::string& qualified,
                                   uint64_t index, const BitVec& value) {
  auto it = registers_.find(qualified);
  if (it == registers_.end()) {
    throw std::invalid_argument("unknown register '" + qualified + "'");
  }
  if (index >= it->second.cells.size()) return;  // silently dropped
  it->second.cells[index] = value;
}

void DataPlaneState::counterIncrement(const std::string& qualified,
                                      uint64_t index) {
  auto it = counters_.find(qualified);
  if (it == counters_.end()) {
    throw std::invalid_argument("unknown counter '" + qualified + "'");
  }
  if (index < it->second.size()) ++it->second[index];
}

uint64_t DataPlaneState::counterValue(const std::string& qualified,
                                      uint64_t index) const {
  auto it = counters_.find(qualified);
  if (it == counters_.end()) {
    throw std::invalid_argument("unknown counter '" + qualified + "'");
  }
  return index < it->second.size() ? it->second[index] : 0;
}

uint32_t DataPlaneState::meterExecute(const std::string& qualified,
                                      uint64_t index) const {
  auto it = meters_.find(qualified);
  if (it == meters_.end()) {
    throw std::invalid_argument("unknown meter '" + qualified + "'");
  }
  return index < it->second.size() ? it->second[index] : 0;
}

void DataPlaneState::meterSetColor(const std::string& qualified,
                                   uint64_t index, uint32_t color) {
  auto it = meters_.find(qualified);
  if (it == meters_.end()) {
    throw std::invalid_argument("unknown meter '" + qualified + "'");
  }
  if (index < it->second.size()) it->second[index] = color & 3;
}

std::map<std::string, std::string> DataPlaneState::externSnapshot() const {
  std::map<std::string, std::string> snap;
  for (const auto& [name, arr] : registers_) {
    for (size_t i = 0; i < arr.cells.size(); ++i) {
      if (!arr.cells[i].isZero()) {
        snap[name + "[" + std::to_string(i) + "]"] =
            arr.cells[i].toHexString();
      }
    }
  }
  for (const auto& [name, cells] : counters_) {
    for (size_t i = 0; i < cells.size(); ++i) {
      if (cells[i] != 0) {
        snap[name + "[" + std::to_string(i) + "]"] = std::to_string(cells[i]);
      }
    }
  }
  for (const auto& [name, cells] : meters_) {
    for (size_t i = 0; i < cells.size(); ++i) {
      if (cells[i] != 0) {
        snap[name + "[" + std::to_string(i) + "]"] = std::to_string(cells[i]);
      }
    }
  }
  return snap;
}

void DataPlaneState::reset() {
  for (auto& [name, arr] : registers_) {
    for (auto& c : arr.cells) c = BitVec::zero(arr.width);
  }
  for (auto& [name, cells] : counters_) {
    for (auto& c : cells) c = 0;
  }
  for (auto& [name, cells] : meters_) {
    for (auto& c : cells) c = 0;
  }
}

}  // namespace flay::sim
