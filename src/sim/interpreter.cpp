#include "sim/interpreter.h"

#include <stdexcept>

namespace flay::sim {

using p4::Expr;
using p4::ExprOp;
using p4::PathKind;
using p4::Stmt;
using p4::StmtOp;

Interpreter::Interpreter(const p4::CheckedProgram& checked,
                         const runtime::DeviceConfig& config,
                         DataPlaneState& state)
    : checked_(checked), config_(config), state_(state) {}

void Interpreter::initStore(const Packet& packet) {
  store_.clear();
  for (const auto& f : checked_.env.fields()) {
    if (f.isBool) {
      store_[f.canonical] = Value::makeBool(false);
    } else {
      store_[f.canonical] = Value::makeBv(BitVec::zero(f.width));
    }
  }
  store_["sm.ingress_port"] =
      Value::makeBv(BitVec(p4::kPortWidth, packet.ingressPort));
  store_["sm.packet_length"] =
      Value::makeBv(BitVec(32, packet.bytes.size()));
}

ExecResult Interpreter::process(const Packet& packet) {
  ++packetsProcessed_;
  initStore(packet);

  ExecResult result;
  const p4::Program& prog = checked_.program;

  const p4::ParserDecl* parser = prog.findParser(prog.pipeline.parserName);
  if (parser == nullptr) throw std::logic_error("pipeline parser missing");
  BitReader reader(packet.bytes);
  result.parserAccepted = runParser(*parser, reader);

  if (result.parserAccepted) {
    for (const auto& name : prog.pipeline.controlNames) {
      const p4::ControlDecl* control = prog.findControl(name);
      if (control == nullptr) throw std::logic_error("pipeline control missing");
      runControl(*control);
    }
    const BitVec& egress = store_.at("sm.egress_spec").bv;
    result.dropped = egress.toUint64() == p4::kDropPort;
    result.egressPort = static_cast<uint32_t>(egress.toUint64());
    if (!result.dropped) {
      const p4::DeparserDecl* deparser =
          prog.findDeparser(prog.pipeline.deparserName);
      if (deparser == nullptr) throw std::logic_error("deparser missing");
      BitWriter writer;
      runDeparser(*deparser, writer);
      result.outputBytes = writer.finish();
    }
  } else {
    result.dropped = true;
  }

  for (const auto& [name, v] : store_) {
    result.fields.emplace(name,
                          v.isBool ? BitVec(1, v.b ? 1 : 0) : v.bv);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Parser execution
// ---------------------------------------------------------------------------

bool Interpreter::runParser(const p4::ParserDecl& parser, BitReader& reader) {
  // Loop bound: header stacks do not exist in P4-lite, so any program that
  // revisits this many states is cycling.
  constexpr int kMaxTransitions = 256;
  const p4::ParserStateDecl* state = parser.findState("start");
  if (state == nullptr) throw std::logic_error("parser has no start state");

  Frame frame;
  frame.parser = &parser;
  for (int step = 0; step < kMaxTransitions; ++step) {
    std::string next;
    for (const auto& stmt : state->body) {
      if (stmt->op == StmtOp::kExtract) {
        const p4::HeaderInstance* hdr =
            checked_.env.findHeader(stmt->lhs->canonical);
        if (hdr == nullptr) throw std::logic_error("extract of non-header");
        for (const auto& fieldName : hdr->fieldCanonicals) {
          const p4::FieldInfo* info = checked_.env.findField(fieldName);
          BitVec v;
          if (!reader.read(info->width, v)) return false;  // reject: too short
          store_[fieldName] = Value::makeBv(std::move(v));
        }
        store_[hdr->validityCanonical] = Value::makeBool(true);
      } else if (stmt->op == StmtOp::kTransition) {
        next = execTransition(stmt->transition, frame);
      } else {
        if (execStmt(*stmt, frame) == Flow::kExit) return true;
      }
    }
    if (next == "accept") return true;
    if (next == "reject") return false;
    state = parser.findState(next);
    if (state == nullptr) throw std::logic_error("unknown parser state");
  }
  throw std::runtime_error("parser exceeded transition budget (cycle?)");
}

std::string Interpreter::execTransition(const p4::TransitionInfo& t,
                                        Frame& frame) {
  if (t.selectExpr == nullptr) return t.nextState;
  BitVec key = evalBv(*t.selectExpr, frame);
  for (const auto& c : t.cases) {
    switch (c.kind) {
      case p4::SelectCase::Kind::kDefault:
        return c.nextState;
      case p4::SelectCase::Kind::kConst: {
        BitVec mask = c.mask != nullptr ? c.mask->value
                                        : BitVec::allOnes(key.width());
        if (key.bitAnd(mask) == c.value->value.bitAnd(mask)) {
          return c.nextState;
        }
        break;
      }
      case p4::SelectCase::Kind::kValueSet: {
        const auto& vs =
            config_.valueSet(frame.parser->name + "." + c.valueSet);
        if (vs.matches(key)) return c.nextState;
        break;
      }
    }
  }
  // No case matched and no default: P4 semantics reject the packet.
  return "reject";
}

// ---------------------------------------------------------------------------
// Control execution
// ---------------------------------------------------------------------------

void Interpreter::runControl(const p4::ControlDecl& control) {
  Frame frame;
  frame.control = &control;
  execStmts(control.applyBody, frame);
}

Interpreter::Flow Interpreter::execStmts(const std::vector<p4::StmtPtr>& stmts,
                                         Frame& frame) {
  for (const auto& s : stmts) {
    if (execStmt(*s, frame) == Flow::kExit) return Flow::kExit;
  }
  return Flow::kContinue;
}

Interpreter::Flow Interpreter::execStmt(const Stmt& stmt, Frame& frame) {
  switch (stmt.op) {
    case StmtOp::kAssign:
      assign(*stmt.lhs, eval(*stmt.rhs, frame), frame);
      return Flow::kContinue;
    case StmtOp::kVarDecl: {
      Value v = stmt.varIsBool ? Value::makeBool(false)
                               : Value::makeBv(BitVec::zero(stmt.varWidth));
      if (stmt.rhs != nullptr) v = eval(*stmt.rhs, frame);
      frame.locals[stmt.varName] = std::move(v);
      return Flow::kContinue;
    }
    case StmtOp::kIf:
      return evalBool(*stmt.cond, frame) ? execStmts(stmt.thenBody, frame)
                                         : execStmts(stmt.elseBody, frame);
    case StmtOp::kApply:
      execApply(stmt, frame);
      return Flow::kContinue;
    case StmtOp::kActionCall: {
      std::vector<BitVec> args;
      args.reserve(stmt.args.size());
      for (const auto& a : stmt.args) args.push_back(evalBv(*a, frame));
      execAction(*frame.control, stmt.target, args, frame);
      return Flow::kContinue;
    }
    case StmtOp::kMarkToDrop:
      store_["sm.egress_spec"] =
          Value::makeBv(BitVec(p4::kPortWidth, p4::kDropPort));
      return Flow::kContinue;
    case StmtOp::kSetValid:
      store_[stmt.lhs->canonical + ".$valid"] = Value::makeBool(true);
      return Flow::kContinue;
    case StmtOp::kSetInvalid:
      store_[stmt.lhs->canonical + ".$valid"] = Value::makeBool(false);
      return Flow::kContinue;
    case StmtOp::kRegRead: {
      std::string qualified = frame.control->name + "." + stmt.target;
      uint64_t idx = evalBv(*stmt.index, frame).toUint64();
      assign(*stmt.lhs, Value::makeBv(state_.registerRead(qualified, idx)),
             frame);
      return Flow::kContinue;
    }
    case StmtOp::kRegWrite: {
      std::string qualified = frame.control->name + "." + stmt.target;
      uint64_t idx = evalBv(*stmt.index, frame).toUint64();
      state_.registerWrite(qualified, idx, evalBv(*stmt.rhs, frame));
      return Flow::kContinue;
    }
    case StmtOp::kCountCall: {
      std::string qualified = frame.control->name + "." + stmt.target;
      state_.counterIncrement(qualified,
                              evalBv(*stmt.index, frame).toUint64());
      return Flow::kContinue;
    }
    case StmtOp::kMeterCall: {
      std::string qualified = frame.control->name + "." + stmt.target;
      uint32_t color = state_.meterExecute(
          qualified, evalBv(*stmt.index, frame).toUint64());
      assign(*stmt.lhs, Value::makeBv(BitVec(2, color)), frame);
      return Flow::kContinue;
    }
    case StmtOp::kEmit: {
      // Handled by runDeparser; reaching here means a malformed program.
      throw std::logic_error("emit outside deparser");
    }
    case StmtOp::kExtract:
      throw std::logic_error("extract outside parser");
    case StmtOp::kTransition:
      throw std::logic_error("transition outside parser");
    case StmtOp::kExit:
      return Flow::kExit;
  }
  return Flow::kContinue;
}

void Interpreter::execApply(const Stmt& stmt, Frame& frame) {
  std::string qualified = frame.control->name + "." + stmt.target;
  const runtime::TableState& table = config_.table(qualified);

  std::vector<BitVec> key;
  key.reserve(table.decl().keys.size());
  for (const auto& k : table.decl().keys) {
    key.push_back(evalBv(*k.expr, frame));
  }
  const runtime::TableEntry* hit = table.lookup(key);
  if (hit != nullptr) {
    execAction(*frame.control, hit->actionName, hit->actionArgs, frame);
  } else {
    execAction(*frame.control, table.defaultActionName(),
               table.defaultActionArgs(), frame);
  }
}

void Interpreter::execAction(const p4::ControlDecl& control,
                             const std::string& name,
                             const std::vector<BitVec>& args, Frame& outer) {
  if (name == "noop" || name == "NoAction") return;
  const p4::ActionDecl* action = control.findAction(name);
  if (action == nullptr) {
    throw std::logic_error("unknown action '" + name + "'");
  }
  Frame frame;
  frame.control = &control;
  frame.parser = outer.parser;
  for (size_t i = 0; i < action->params.size(); ++i) {
    frame.params[action->params[i].name] = Value::makeBv(args[i]);
  }
  execStmts(action->body, frame);
}

// ---------------------------------------------------------------------------
// Deparser
// ---------------------------------------------------------------------------

void Interpreter::runDeparser(const p4::DeparserDecl& deparser,
                              BitWriter& writer) {
  for (const auto& stmt : deparser.body) {
    if (stmt->op != StmtOp::kEmit) {
      throw std::logic_error("deparsers may only contain emit statements");
    }
    const p4::HeaderInstance* hdr =
        checked_.env.findHeader(stmt->lhs->canonical);
    if (hdr == nullptr) throw std::logic_error("emit of non-header");
    if (!store_.at(hdr->validityCanonical).b) continue;
    for (const auto& fieldName : hdr->fieldCanonicals) {
      writer.write(store_.at(fieldName).bv);
    }
  }
}

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

Interpreter::Value& Interpreter::lookupMutable(const std::string& canonical,
                                               PathKind kind, Frame& frame) {
  switch (kind) {
    case PathKind::kField:
      return store_.at(canonical);
    case PathKind::kLocal: {
      auto it = frame.locals.find(canonical);
      if (it == frame.locals.end()) {
        throw std::logic_error("use of undeclared local '" + canonical + "'");
      }
      return it->second;
    }
    case PathKind::kActionParam: {
      auto it = frame.params.find(canonical);
      if (it == frame.params.end()) {
        throw std::logic_error("unbound action parameter '" + canonical + "'");
      }
      return it->second;
    }
    default:
      throw std::logic_error("not an lvalue: " + canonical);
  }
}

Interpreter::Value Interpreter::eval(const Expr& e, Frame& frame) {
  switch (e.op) {
    case ExprOp::kIntLit:
      return Value::makeBv(e.value);
    case ExprOp::kBoolLit:
      return Value::makeBool(e.boolValue);
    case ExprOp::kPath:
      if (e.pathKind == PathKind::kConst) return Value::makeBv(e.value);
      return lookupMutable(e.canonical, e.pathKind, frame);
    case ExprOp::kIsValid:
      return Value::makeBool(store_.at(e.canonical + ".$valid").b);
    case ExprOp::kUnary:
      switch (e.unOp) {
        case p4::UnOp::kLNot:
          return Value::makeBool(!evalBool(*e.a, frame));
        case p4::UnOp::kBitNot:
          return Value::makeBv(evalBv(*e.a, frame).bitNot());
        case p4::UnOp::kNeg:
          return Value::makeBv(evalBv(*e.a, frame).neg());
      }
      break;
    case ExprOp::kBinary: {
      using p4::BinOp;
      switch (e.binOp) {
        case BinOp::kLAnd:
          return Value::makeBool(evalBool(*e.a, frame) &&
                                 evalBool(*e.b, frame));
        case BinOp::kLOr:
          return Value::makeBool(evalBool(*e.a, frame) ||
                                 evalBool(*e.b, frame));
        case BinOp::kEq:
        case BinOp::kNe: {
          bool eq;
          if (e.a->isBool) {
            eq = evalBool(*e.a, frame) == evalBool(*e.b, frame);
          } else {
            eq = evalBv(*e.a, frame) == evalBv(*e.b, frame);
          }
          return Value::makeBool(e.binOp == BinOp::kEq ? eq : !eq);
        }
        default:
          break;
      }
      BitVec a = evalBv(*e.a, frame);
      switch (e.binOp) {
        // Shift amounts are clamped, not narrowed: an amount >= the operand
        // width (or beyond 2^32) must yield zero per SMT-LIB, matching the
        // symbolic executor and the bit blaster.
        case BinOp::kShl:
          return Value::makeBv(
              a.shl(clampShiftAmount(e.b->value, a.width())));
        case BinOp::kShr:
          return Value::makeBv(
              a.lshr(clampShiftAmount(e.b->value, a.width())));
        default:
          break;
      }
      BitVec b = evalBv(*e.b, frame);
      switch (e.binOp) {
        case BinOp::kAdd: return Value::makeBv(a.add(b));
        case BinOp::kSub: return Value::makeBv(a.sub(b));
        case BinOp::kMul: return Value::makeBv(a.mul(b));
        case BinOp::kDiv: return Value::makeBv(a.udiv(b));
        case BinOp::kMod: return Value::makeBv(a.urem(b));
        case BinOp::kBitAnd: return Value::makeBv(a.bitAnd(b));
        case BinOp::kBitOr: return Value::makeBv(a.bitOr(b));
        case BinOp::kBitXor: return Value::makeBv(a.bitXor(b));
        case BinOp::kLt: return Value::makeBool(a.ult(b));
        case BinOp::kLe: return Value::makeBool(a.ule(b));
        case BinOp::kGt: return Value::makeBool(b.ult(a));
        case BinOp::kGe: return Value::makeBool(b.ule(a));
        case BinOp::kConcat: return Value::makeBv(a.concat(b));
        default:
          throw std::logic_error("unhandled binary operator");
      }
    }
    case ExprOp::kTernary:
      return evalBool(*e.a, frame) ? eval(*e.b, frame) : eval(*e.c, frame);
    case ExprOp::kSlice:
      return Value::makeBv(evalBv(*e.a, frame).slice(e.sliceHi, e.sliceLo));
    case ExprOp::kCast: {
      BitVec v = evalBv(*e.a, frame);
      return Value::makeBv(v.width() <= e.castWidth ? v.zext(e.castWidth)
                                                    : v.trunc(e.castWidth));
    }
  }
  throw std::logic_error("unhandled expression");
}

BitVec Interpreter::evalBv(const Expr& e, Frame& frame) {
  Value v = eval(e, frame);
  if (v.isBool) throw std::logic_error("expected bit<N>, got bool");
  return std::move(v.bv);
}

bool Interpreter::evalBool(const Expr& e, Frame& frame) {
  Value v = eval(e, frame);
  if (!v.isBool) throw std::logic_error("expected bool, got bit<N>");
  return v.b;
}

void Interpreter::assign(const Expr& lhs, Value v, Frame& frame) {
  if (lhs.op == ExprOp::kSlice) {
    // Read-modify-write the sliced range.
    Value& target =
        lookupMutable(lhs.a->canonical, lhs.a->pathKind, frame);
    BitVec cur = target.bv;
    uint32_t w = cur.width();
    BitVec mask = BitVec::allOnes(lhs.sliceHi - lhs.sliceLo + 1)
                      .zext(w)
                      .shl(lhs.sliceLo);
    BitVec shifted = v.bv.zext(w).shl(lhs.sliceLo);
    target.bv = cur.bitAnd(mask.bitNot()).bitOr(shifted.bitAnd(mask));
    return;
  }
  Value& target = lookupMutable(lhs.canonical, lhs.pathKind, frame);
  target = std::move(v);
}

}  // namespace flay::sim
