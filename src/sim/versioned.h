#ifndef FLAY_SIM_VERSIONED_H
#define FLAY_SIM_VERSIONED_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "p4/typecheck.h"
#include "runtime/device_config.h"

namespace flay::sim {

/// One immutable installed-program snapshot: everything a forwarding thread
/// needs to serve packets, plus the epoch accounting that turns each packet
/// into a staleness sample. Published once and never mutated afterwards, so
/// any number of forwarding threads can hold it via shared_ptr while the
/// control plane swaps in successors.
struct ProgramVersion {
  /// The program the device is running (specialized, or the original when
  /// nothing was installed yet).
  std::shared_ptr<const p4::CheckedProgram> program;
  /// Config the interpreter drives `program` with (migrated onto it).
  std::shared_ptr<const runtime::DeviceConfig> config;
  /// Device-visible control-plane state in terms of the *original* program —
  /// the reference side for post-hoc oracle replays and packet generation.
  std::shared_ptr<const runtime::DeviceConfig> deviceConfig;
  /// Committed updates this version makes visible on the device. A packet
  /// served by this version while the controller has committed more is a
  /// stale packet; the difference is its staleness in updates.
  uint64_t epoch = 0;
  /// Monotonic publish number (per data plane).
  uint64_t sequence = 0;
  /// support::Stopwatch::nowMicros() at publish time.
  uint64_t publishedAtMicros = 0;
  /// Published while the owning controller was degraded (device pinned to
  /// its last good program; some committed updates may be queued).
  bool degraded = false;
  /// Published by a recovery (re-specialize + install after degradation).
  bool recovery = false;
};

/// Version-stamped program swap between one control plane and any number of
/// forwarding threads. publish() is called from the control side (serialized
/// per device by construction — the fleet applies a device's updates in
/// order); current() hands a forwarding thread an immutable snapshot.
/// sequence() is a single relaxed atomic load, cheap enough to poll per
/// packet to detect that a newer version is available.
class VersionedDataPlane {
 public:
  void publish(ProgramVersion version) {
    auto snap = std::make_shared<const ProgramVersion>(std::move(version));
    {
      std::lock_guard<std::mutex> lock(mu_);
      current_ = std::move(snap);
    }
    // Release so a forwarding thread that observes the new sequence also
    // observes the fully-built version through the mutex on the next fetch.
    seq_.fetch_add(1, std::memory_order_release);
  }

  /// Null until the first publish.
  std::shared_ptr<const ProgramVersion> current() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
  }

  uint64_t sequence() const { return seq_.load(std::memory_order_acquire); }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const ProgramVersion> current_;
  std::atomic<uint64_t> seq_{0};
};

/// Per-packet epoch accounting: the update epoch a packet *should* have seen
/// (what the control plane has committed for this device) versus the epoch
/// of the version that actually forwarded it.
struct EpochStamp {
  uint64_t servedEpoch = 0;
  uint64_t authoritativeEpoch = 0;

  bool stale() const { return authoritativeEpoch > servedEpoch; }
  uint64_t stalenessUpdates() const {
    return stale() ? authoritativeEpoch - servedEpoch : 0;
  }
};

}  // namespace flay::sim

#endif  // FLAY_SIM_VERSIONED_H
