#ifndef FLAY_SIM_STATE_H
#define FLAY_SIM_STATE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "p4/typecheck.h"
#include "support/bitvec.h"

namespace flay::sim {

/// Mutable data-plane state that persists across packets: register arrays,
/// counters, and meter configurations. Keyed by qualified extern name
/// ("Ingress.flow_bytes").
class DataPlaneState {
 public:
  explicit DataPlaneState(const p4::CheckedProgram& checked);

  BitVec registerRead(const std::string& qualified, uint64_t index) const;
  void registerWrite(const std::string& qualified, uint64_t index,
                     const BitVec& value);

  void counterIncrement(const std::string& qualified, uint64_t index);
  uint64_t counterValue(const std::string& qualified, uint64_t index) const;

  /// Meters are modeled as a configured color per index (0 = green by
  /// default); tests and workloads set colors to exercise meter branches.
  uint32_t meterExecute(const std::string& qualified, uint64_t index) const;
  void meterSetColor(const std::string& qualified, uint64_t index,
                     uint32_t color);

  void reset();

  /// Sparse rendering of every extern cell that differs from its initial
  /// value ("Ingress.flow_bytes[5]" -> "0x2a"). Two states over different
  /// (but behaviourally equivalent) programs compare equal exactly when all
  /// their non-default cells agree — the extern half of the oracle's
  /// divergence check.
  std::map<std::string, std::string> externSnapshot() const;

 private:
  struct RegisterArray {
    uint32_t width = 0;
    std::vector<BitVec> cells;
  };
  const RegisterArray& reg(const std::string& qualified) const;

  std::map<std::string, RegisterArray> registers_;
  std::map<std::string, std::vector<uint64_t>> counters_;
  std::map<std::string, std::vector<uint32_t>> meters_;
};

}  // namespace flay::sim

#endif  // FLAY_SIM_STATE_H
