#include "sim/packet.h"

namespace flay::sim {

bool BitReader::read(uint32_t width, BitVec& out) {
  if (bitsRemaining() < width) return false;
  BitVec v = BitVec::zero(width);
  for (uint32_t i = 0; i < width; ++i) {
    size_t pos = bitPos_ + i;
    bool bit = ((*bytes_)[pos / 8] >> (7 - pos % 8)) & 1;
    if (bit) {
      // Network order: the first bit read is the value's MSB.
      v = v.bitOr(BitVec::one(width).shl(width - 1 - i));
    }
  }
  bitPos_ += width;
  out = std::move(v);
  return true;
}

void BitWriter::write(const BitVec& value) {
  for (uint32_t i = value.width(); i-- > 0;) {
    size_t pos = bitPos_++;
    if (pos / 8 >= bytes_.size()) bytes_.push_back(0);
    if (value.bit(i)) {
      bytes_[pos / 8] |= static_cast<uint8_t>(1u << (7 - pos % 8));
    }
  }
}

std::vector<uint8_t> BitWriter::finish() { return std::move(bytes_); }

}  // namespace flay::sim
