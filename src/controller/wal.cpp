#include "controller/wal.h"

#include <unistd.h>

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/obs.h"

namespace flay::controller {

namespace {

/// Journal lines are JSON; update text contains no quotes or control
/// characters today, but escape defensively so the format stays valid if a
/// future renderer changes that.
std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Minimal cursor-based reader for the records this writer emits. Any
/// mismatch returns false — the caller treats the line as a torn tail.
struct LineParser {
  std::string_view s;
  size_t pos = 0;

  bool literal(std::string_view lit) {
    if (s.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }
  bool number(uint64_t* out) {
    if (pos >= s.size() || s[pos] < '0' || s[pos] > '9') return false;
    uint64_t v = 0;
    while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
      v = v * 10 + static_cast<uint64_t>(s[pos] - '0');
      ++pos;
    }
    *out = v;
    return true;
  }
  bool quoted(std::string* out) {
    if (!literal("\"")) return false;
    out->clear();
    while (pos < s.size() && s[pos] != '"') {
      if (s[pos] == '\\') {
        ++pos;
        if (pos >= s.size()) return false;
        *out += s[pos] == 'n' ? '\n' : s[pos];
      } else {
        *out += s[pos];
      }
      ++pos;
    }
    return literal("\"");
  }
};

bool parseLine(std::string_view line, JournalRecord* rec) {
  LineParser p{line};
  if (!p.literal("{\"seq\":")) return false;
  if (!p.number(&rec->seq)) return false;
  if (!p.literal(",\"type\":\"")) return false;
  std::string type;
  while (p.pos < line.size() && line[p.pos] != '"') type += line[p.pos++];
  if (!p.literal("\"")) return false;
  if (type == "begin") {
    rec->type = JournalRecord::Type::kBegin;
    uint64_t n = 0;
    if (!p.literal(",\"n\":") || !p.number(&n)) return false;
    rec->n = static_cast<size_t>(n);
  } else if (type == "update") {
    rec->type = JournalRecord::Type::kUpdate;
    if (!p.literal(",\"text\":") || !p.quoted(&rec->text)) return false;
  } else if (type == "commit") {
    rec->type = JournalRecord::Type::kCommit;
  } else if (type == "abort") {
    rec->type = JournalRecord::Type::kAbort;
  } else if (type == "checkpoint") {
    rec->type = JournalRecord::Type::kCheckpoint;
    if (!p.literal(",\"file\":") || !p.quoted(&rec->file)) return false;
  } else if (type == "ifc") {
    rec->type = JournalRecord::Type::kIfcViolation;
    if (!p.literal(",\"text\":") || !p.quoted(&rec->text)) return false;
  } else {
    return false;
  }
  return p.literal("}") && p.pos == line.size();
}

}  // namespace

Journal::~Journal() { close(); }

void Journal::open() {
  if (file_ != nullptr) return;
  // Continue the sequence after whatever intact tail already exists.
  for (const JournalRecord& rec : load(path_)) seq_ = rec.seq;
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    throw std::runtime_error("cannot open journal '" + path_ + "'");
  }
}

void Journal::close() {
  if (file_ == nullptr) return;
  std::fclose(file_);
  file_ = nullptr;
}

uint64_t Journal::append(const std::string& body) {
  if (file_ == nullptr) {
    throw std::runtime_error("journal '" + path_ + "' is not open");
  }
  uint64_t seq = ++seq_;
  std::string line = "{\"seq\":" + std::to_string(seq) + "," + body + "}\n";
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    throw std::runtime_error("journal write failed: " + path_);
  }
  // Flush to the OS and to the disk: a record is only "journaled" once it
  // survives SIGKILL of this process (fflush) and power loss (fsync).
  std::fflush(file_);
  ::fsync(fileno(file_));
  obs::Registry::global().counter("controller.journal_records").add(1);
  return seq;
}

uint64_t Journal::appendBegin(size_t n) {
  return append("\"type\":\"begin\",\"n\":" + std::to_string(n));
}

uint64_t Journal::appendUpdate(const runtime::Update& update) {
  return append("\"type\":\"update\",\"text\":\"" +
                jsonEscape(update.toString()) + "\"");
}

uint64_t Journal::appendCommit() { return append("\"type\":\"commit\""); }

uint64_t Journal::appendAbort() { return append("\"type\":\"abort\""); }

uint64_t Journal::appendCheckpoint(const std::string& checkpointFile) {
  return append("\"type\":\"checkpoint\",\"file\":\"" +
                jsonEscape(checkpointFile) + "\"");
}

uint64_t Journal::appendIfcViolation(const std::string& flowText) {
  return append("\"type\":\"ifc\",\"text\":\"" + jsonEscape(flowText) + "\"");
}

std::vector<JournalRecord> Journal::load(const std::string& path) {
  std::vector<JournalRecord> records;
  std::ifstream in(path);
  if (!in) return records;
  std::string line;
  while (std::getline(in, line)) {
    JournalRecord rec;
    if (!parseLine(line, &rec)) break;  // torn tail: stop, keep the prefix
    records.push_back(std::move(rec));
  }
  return records;
}

// ---------------------------------------------------------------------------
// Checkpoint
// ---------------------------------------------------------------------------

void Checkpoint::write(const std::string& path,
                       const runtime::DeviceConfig& config, uint64_t seq) {
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write checkpoint '" + tmp + "'");
    out << "flay-checkpoint v1\n";
    out << "seq " << seq << "\n";
    for (const auto& [name, table] : config.tables()) {
      for (const runtime::TableEntry& e : table.entries()) {
        runtime::Update u;
        u.kind = runtime::Update::Kind::kInsert;
        u.target = name;
        u.entry = e;
        out << "entry " << e.id << " " << u.toString() << "\n";
      }
      runtime::Update d;
      d.kind = runtime::Update::Kind::kSetDefaultAction;
      d.target = name;
      d.actionName = table.defaultActionName();
      d.actionArgs = table.defaultActionArgs();
      out << "u " << d.toString() << "\n";
      // After the entries so restoreEntry's bumping is then pinned exactly.
      out << "nextid " << name << " " << table.nextId() << "\n";
    }
    for (const auto& [name, vs] : config.valueSets()) {
      for (const auto& [value, mask] : vs.members()) {
        runtime::Update u;
        u.kind = runtime::Update::Kind::kValueSetInsert;
        u.target = name;
        u.value = value;
        u.mask = mask;
        out << "u " << u.toString() << "\n";
      }
    }
    for (const auto& [name, prof] : config.actionProfiles()) {
      for (const auto& m : prof.members()) {
        runtime::Update u;
        u.kind = runtime::Update::Kind::kProfileAdd;
        u.target = name;
        u.member = m;
        out << "u " << u.toString() << "\n";
      }
    }
    out << "end\n";
    out.flush();
    if (!out) throw std::runtime_error("checkpoint write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("checkpoint rename failed: " + path);
  }
  obs::Registry::global().counter("controller.checkpoints").add(1);
}

runtime::DeviceConfig Checkpoint::load(const std::string& path,
                                       const p4::CheckedProgram& checked,
                                       uint64_t* seq) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read checkpoint '" + path + "'");
  std::string line;
  if (!std::getline(in, line) || line != "flay-checkpoint v1") {
    throw std::runtime_error("bad checkpoint header in '" + path + "'");
  }
  if (!std::getline(in, line) || line.substr(0, 4) != "seq ") {
    throw std::runtime_error("missing seq in checkpoint '" + path + "'");
  }
  *seq = std::stoull(line.substr(4));
  runtime::DeviceConfig config(checked);
  bool sawEnd = false;
  while (std::getline(in, line)) {
    if (line == "end") {
      sawEnd = true;
      break;
    }
    if (line.substr(0, 6) == "entry ") {
      size_t sp = line.find(' ', 6);
      if (sp == std::string::npos) {
        throw std::runtime_error("bad entry line in checkpoint '" + path + "'");
      }
      uint64_t id = std::stoull(line.substr(6, sp - 6));
      runtime::Update u =
          runtime::Update::fromString(checked, line.substr(sp + 1));
      u.entry.id = id;
      config.table(u.target).restoreEntry(u.entry);
    } else if (line.substr(0, 2) == "u ") {
      config.apply(runtime::Update::fromString(checked, line.substr(2)));
    } else if (line.substr(0, 7) == "nextid ") {
      size_t sp = line.find(' ', 7);
      if (sp == std::string::npos) {
        throw std::runtime_error("bad nextid line in checkpoint '" + path + "'");
      }
      config.table(line.substr(7, sp - 7))
          .setNextId(std::stoull(line.substr(sp + 1)));
    } else {
      throw std::runtime_error("unknown checkpoint line: " + line);
    }
  }
  if (!sawEnd) {
    throw std::runtime_error("torn checkpoint (no end marker): '" + path + "'");
  }
  return config;
}

}  // namespace flay::controller
