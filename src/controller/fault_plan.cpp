#include "controller/fault_plan.h"

#include <stdexcept>

namespace flay::controller {

namespace {

[[noreturn]] void badSpec(std::string_view spec, const std::string& why) {
  throw std::invalid_argument("bad fault plan '" + std::string(spec) +
                              "': " + why);
}

uint64_t parseUint(std::string_view spec, std::string_view digits) {
  if (digits.empty()) badSpec(spec, "expected a number");
  uint64_t v = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') badSpec(spec, "bad number '" + std::string(digits) + "'");
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  return v;
}

double parseProbability(std::string_view spec, std::string_view text) {
  size_t dot = text.find('.');
  if (dot == std::string_view::npos) {
    uint64_t v = parseUint(spec, text);
    if (v > 1) badSpec(spec, "probability must be in [0,1]");
    return static_cast<double>(v);
  }
  double whole = static_cast<double>(parseUint(spec, text.substr(0, dot)));
  std::string_view frac = text.substr(dot + 1);
  double scale = 1.0;
  double fracValue = 0.0;
  for (char c : frac) {
    if (c < '0' || c > '9') badSpec(spec, "bad probability");
    scale /= 10.0;
    fracValue += (c - '0') * scale;
  }
  double p = whole + fracValue;
  if (p > 1.0) badSpec(spec, "probability must be in [0,1]");
  return p;
}

std::string renderProbability(double p) {
  // Two decimal places suffice for plan specs; trim a trailing zero.
  auto d = static_cast<uint32_t>(p * 100.0 + 0.5);
  std::string s = std::to_string(d / 100) + "." + std::to_string((d / 10) % 10);
  if (d % 10 != 0) s += std::to_string(d % 10);
  return s;
}

}  // namespace

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  std::string_view rest = spec;
  while (!rest.empty()) {
    size_t comma = rest.find(',');
    std::string_view item =
        comma == std::string_view::npos ? rest : rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (item.empty()) continue;
    size_t eq = item.find('=');
    if (eq == std::string_view::npos) badSpec(spec, "expected key=value");
    std::string_view key = item.substr(0, eq);
    std::string_view value = item.substr(eq + 1);
    if (key == "reject-first") {
      plan.rejectFirstCompiles = static_cast<uint32_t>(parseUint(spec, value));
    } else if (key == "reject-p") {
      plan.compileRejectProbability = parseProbability(spec, value);
    } else if (key == "fail-first") {
      plan.failFirstInstalls = static_cast<uint32_t>(parseUint(spec, value));
    } else if (key == "flaky") {
      plan.installFailProbability = parseProbability(spec, value);
    } else if (key == "outage") {
      size_t plus = value.find('+');
      if (plus == std::string_view::npos) badSpec(spec, "outage=start+length");
      plan.outageStart = static_cast<uint32_t>(parseUint(spec, value.substr(0, plus)));
      plan.outageLength =
          static_cast<uint32_t>(parseUint(spec, value.substr(plus + 1)));
    } else if (key == "slow") {
      plan.slowInstallMicros = parseUint(spec, value);
    } else if (key == "seed") {
      plan.seed = parseUint(spec, value);
    } else {
      badSpec(spec, "unknown key '" + std::string(key) + "'");
    }
  }
  return plan;
}

std::string FaultPlan::toString() const {
  std::string s;
  auto add = [&s](const std::string& item) {
    if (!s.empty()) s += ",";
    s += item;
  };
  if (rejectFirstCompiles != 0) {
    add("reject-first=" + std::to_string(rejectFirstCompiles));
  }
  if (compileRejectProbability > 0.0) {
    add("reject-p=" + renderProbability(compileRejectProbability));
  }
  if (failFirstInstalls != 0) {
    add("fail-first=" + std::to_string(failFirstInstalls));
  }
  if (installFailProbability > 0.0) {
    add("flaky=" + renderProbability(installFailProbability));
  }
  if (outageLength != 0) {
    add("outage=" + std::to_string(outageStart) + "+" +
        std::to_string(outageLength));
  }
  if (slowInstallMicros != 0) add("slow=" + std::to_string(slowInstallMicros));
  if (seed != 1) add("seed=" + std::to_string(seed));
  return s.empty() ? "none" : s;
}

std::vector<std::pair<std::string, FaultPlan>> FaultPlan::builtinPlans() {
  std::vector<std::pair<std::string, FaultPlan>> plans;
  plans.emplace_back("none", FaultPlan{});
  plans.emplace_back("transient", FaultPlan::parse("fail-first=2"));
  plans.emplace_back("flaky", FaultPlan::parse("flaky=0.3"));
  plans.emplace_back("reject-compile", FaultPlan::parse("reject-first=1"));
  plans.emplace_back("outage", FaultPlan::parse("outage=2+100"));
  plans.emplace_back("slow", FaultPlan::parse("slow=500"));
  return plans;
}

}  // namespace flay::controller
