#include "controller/device.h"

#include <chrono>
#include <thread>

#include "obs/obs.h"

namespace flay::controller {

namespace {

struct DeviceObs {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& compiles = reg.counter("controller.device_compiles");
  obs::Counter& compileRejects = reg.counter("controller.compile_rejects");
  obs::Counter& installs = reg.counter("controller.device_installs");
  obs::Counter& installFailures = reg.counter("controller.install_failures");
  obs::Histogram& installUs = reg.histogram("controller.install_us");

  static DeviceObs& get() {
    static DeviceObs instance;
    return instance;
  }
};

}  // namespace

tofino::CompileResult SimulatedDevice::compileProgram(
    const p4::CheckedProgram& checked) {
  DeviceObs& dobs = DeviceObs::get();
  dobs.compiles.add(1);
  uint64_t attempt = ++compileAttempts_;
  bool inject = attempt <= plan_.rejectFirstCompiles;
  if (!inject && plan_.compileRejectProbability > 0.0) {
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    inject = coin(rng_) < plan_.compileRejectProbability;
  }
  if (inject) {
    ++injectedCompileRejects_;
    dobs.compileRejects.add(1);
    tofino::CompileResult rejected;
    rejected.fits = false;
    rejected.error = "injected: program rejected by device compiler (attempt " +
                     std::to_string(attempt) + ")";
    return rejected;
  }
  tofino::CompileResult result = compiler_.compile(checked);
  if (!result.fits) dobs.compileRejects.add(1);
  return result;
}

InstallResult SimulatedDevice::installProgram(const p4::CheckedProgram&) {
  DeviceObs& dobs = DeviceObs::get();
  dobs.installs.add(1);
  uint64_t attempt = ++installAttempts_;
  InstallResult result;
  result.latencyMicros = plan_.slowInstallMicros;
  dobs.installUs.record(result.latencyMicros);
  if (plan_.slowInstallMicros != 0) {
    // The install is an RPC to the switch driver: the caller is blocked for
    // its duration. Sleeping (instead of merely reporting the latency) is
    // what lets fleet-level concurrency measurably hide slow devices.
    std::this_thread::sleep_for(
        std::chrono::microseconds(plan_.slowInstallMicros));
  }
  bool inject = attempt <= plan_.failFirstInstalls;
  if (plan_.outageLength != 0 && attempt >= plan_.outageStart &&
      attempt < plan_.outageStart + plan_.outageLength) {
    inject = true;
  }
  if (!inject && plan_.installFailProbability > 0.0) {
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    inject = coin(rng_) < plan_.installFailProbability;
  }
  if (inject) {
    ++injectedInstallFailures_;
    dobs.installFailures.add(1);
    result.ok = false;
    result.transient = true;
    result.error = "injected: transient install failure (attempt " +
                   std::to_string(attempt) + ")";
    return result;
  }
  result.ok = true;
  return result;
}

}  // namespace flay::controller
