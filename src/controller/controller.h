#ifndef FLAY_CONTROLLER_CONTROLLER_H
#define FLAY_CONTROLLER_CONTROLLER_H

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "controller/device.h"
#include "controller/wal.h"
#include "flay/engine.h"
#include "flay/specializer.h"
#include "ifc/ifc.h"
#include "support/stopwatch.h"

namespace flay::controller {

struct ControllerOptions {
  /// Directory for the write-ahead journal and checkpoints; "" disables
  /// persistence (the controller is then purely in-memory).
  std::string stateDir;
  /// Committed updates between checkpoints (0 = only on checkpointNow()).
  size_t checkpointEvery = 64;
  /// Install/compile attempts beyond the first before giving up and
  /// degrading.
  uint32_t maxInstallRetries = 4;
  /// Exponential backoff between attempts: min(base << attempt, max) plus
  /// jitter in [0, base). Recorded in controller.backoff_us; only actually
  /// slept when sleepOnBackoff (tests keep the schedule observable without
  /// paying it in wall-clock).
  uint64_t backoffBaseMicros = 200;
  uint64_t backoffMaxMicros = 50000;
  bool sleepOnBackoff = false;
  /// While degraded, a recovery (re-specialize + compile + install) is
  /// attempted automatically after this many committed updates (0 = only
  /// on explicit tryRecover()).
  size_t tryRecoverEvery = 8;
  /// Compile-and-install the current program at construction time (and
  /// after crash recovery). Disable for pure journal/replay use.
  bool installInitialProgram = true;
  /// Jitter seed.
  uint64_t seed = 1;
  /// When set, an ifc::IfcEngine is attached to the service: every
  /// committed apply re-verifies the policy's flows on the incremental hot
  /// path, and each flow transitioning into violation is journaled as an
  /// "ifc" audit record.
  std::optional<ifc::IfcPolicy> ifcPolicy;
  flay::FlayOptions flay;
  flay::SpecializerOptions specializer;
};

/// Outcome of one streaming bulk load routed through the controller.
struct BulkApplyResult {
  flay::BulkLoadReport report;
  /// The device kept up with the whole stream (entries forwarded, or one
  /// recompiled program installed at the end).
  bool deviceCurrent = false;
  bool degraded = false;
  size_t retries = 0;
};

/// Device-visibility accounting for one committed step, fired on the
/// applying thread after every committed batch/stream and after every
/// successful recovery. `committed - deviceVisible` is the device's update
/// backlog: the staleness (in updates) any packet it forwards right now
/// experiences. The replay harness turns these events into version-stamped
/// program swaps and verdict-to-install lag samples.
struct EpochEvent {
  uint64_t committed = 0;      ///< committedUpdates() after this step
  uint64_t deviceVisible = 0;  ///< committed updates represented on the device
  /// This step moved deviceVisible forward (forwarded entries or an install).
  bool advanced = false;
  /// Visibility advanced via specialize + compile + install (not forwarding).
  bool viaRecompile = false;
  /// Fired by a successful tryRecover() leaving degraded mode.
  bool recovery = false;
  /// Controller is degraded after this step.
  bool degraded = false;
  /// Verdict-ready -> device-visible for this step; for a recovery, the full
  /// time spent degraded (how long the oldest queued update waited).
  uint64_t installLagMicros = 0;
};
using EpochCallback = std::function<void(const EpochEvent&)>;

struct ApplyResult {
  flay::UpdateVerdict verdict;
  /// The device kept up with this update: either the entries flowed to the
  /// running program, or a recompiled program was installed.
  bool deviceCurrent = false;
  /// Controller is in degraded mode after this update (device pinned to the
  /// last good program; this or earlier updates are queued).
  bool degraded = false;
  /// Install/compile retries spent on this update.
  size_t retries = 0;
};

/// Fault-tolerant wrapper around flay::FlayService implementing the paper's
/// Fig. 2 control loop with the robustness the paper assumes but does not
/// spell out:
///
///  - Transactional batches: every apply is bracketed by a copy-on-write
///    ServiceSnapshot; a mid-batch failure restores the exact pre-batch
///    analysis state (strong exception guarantee).
///  - Write-ahead journal + checkpoints: committed updates survive SIGKILL;
///    a restarted controller recovers to the last committed state by
///    loading the newest intact checkpoint and replaying the journal tail.
///  - Device retry/backoff + graceful degradation: failed compiles/installs
///    are retried with exponential backoff; when retries exhaust, the
///    device stays pinned to the last good specialized program and the
///    controller keeps forwarding updates that are semantics-preserving
///    *for the pinned program*, queueing the rest until recovery succeeds.
///
/// The degradation invariant the differential oracle checks: at all times
/// the device runs a (program, config) pair packet-equivalent to the
/// original program under the device-visible config.
class FaultTolerantController {
 public:
  /// `device` may be null (no device interaction: analysis + WAL only).
  /// If options.stateDir holds a journal from a previous run, the
  /// constructor performs crash recovery before accepting new updates.
  FaultTolerantController(const p4::CheckedProgram& checked, Device* device,
                          ControllerOptions options = {});

  ApplyResult apply(const runtime::Update& update);
  ApplyResult applyBatch(const std::vector<runtime::Update>& updates);

  /// Streams a bulk load through the service's classifier-prefiltered path
  /// (FlayService::applyStream), journaling each chunk as one committed
  /// transaction group and reconciling the device once at the end of the
  /// stream: a single recompile+install if any chunk's verdict demands it,
  /// plain forwarding otherwise. While degraded, the stream is applied to
  /// the authoritative state and queued for the device until recovery.
  /// Unlike applyBatch there is no whole-stream rollback — rejected updates
  /// are skipped (and counted) exactly as a sequential replay would.
  BulkApplyResult applyBulk(const flay::UpdateSource& source,
                            flay::BulkLoadOptions options = {});
  /// Convenience wrapper for an in-memory batch.
  BulkApplyResult applyBulk(const std::vector<runtime::Update>& updates,
                            flay::BulkLoadOptions options = {});

  bool degraded() const { return degraded_; }
  size_t queuedUpdates() const { return queued_.size(); }
  /// Attempts to leave degraded mode by re-specializing against the full
  /// current state and installing the result. True if healthy afterwards.
  bool tryRecover();

  /// The authoritative analysis state (every committed update applied).
  const flay::FlayService& service() const { return *service_; }
  flay::FlayService& service() { return *service_; }

  /// The device-visible control-plane state: equals service().config() when
  /// healthy, lags behind it while degraded.
  const runtime::DeviceConfig& deviceConfig() const;
  /// The program the device is running: the last successfully installed
  /// specialized program, or the original when none was installed yet.
  const p4::CheckedProgram& deviceProgram() const;

  /// Committed updates replayed from the journal during construction.
  uint64_t replayedUpdates() const { return replayedUpdates_; }
  uint64_t committedUpdates() const {
    return committedUpdates_.load(std::memory_order_relaxed);
  }
  /// Committed updates represented on the device right now (equals
  /// committedUpdates() when healthy; lags by the queued backlog while
  /// degraded). Safe to read from any thread.
  uint64_t deviceVisibleUpdates() const {
    return deviceVisibleUpdates_.load(std::memory_order_relaxed);
  }

  /// Observer for device-visibility changes (see EpochEvent). Invoked on
  /// whichever thread applies updates, strictly serialized with the apply
  /// itself — reading deviceProgram()/deviceConfig() inside the callback is
  /// safe. Set before the first apply; not thread-safe against a concurrent
  /// apply.
  void setEpochCallback(EpochCallback cb) { epochCallback_ = std::move(cb); }

  /// Shared handle to the pinned (last installed) program; null when the
  /// device still runs the original. Unlike deviceProgram(), the returned
  /// snapshot stays valid after the next install replaces the pin — this is
  /// what lets forwarding threads keep serving a superseded version.
  std::shared_ptr<const p4::CheckedProgram> pinnedProgram() const {
    return pinned_;
  }

  /// Forces a checkpoint of the current committed state.
  void checkpointNow();

  /// Per-update IFC report of the attached engine; null when
  /// options.ifcPolicy was not set.
  const ifc::IfcReport* lastIfcReport() const {
    return ifc_ != nullptr ? &ifc_->lastReport() : nullptr;
  }
  /// Flow transitions into violation observed (and journaled) so far. A
  /// flow that clears and re-violates counts again.
  uint64_t ifcViolationEvents() const { return ifcViolationEvents_; }

  /// Process-independent digest of the full controller-visible state
  /// (config including entry ids and allocator positions, plus every
  /// specialized program-point expression). Two controllers with equal
  /// digests are in observably identical states — the crashtest compares
  /// this across kill/recover boundaries.
  std::string stateDigest() const;

 private:
  void recoverFromJournal();
  /// Specialize + compile + install with retry/backoff. Updates pinned_ on
  /// success. Returns success; fills *retries.
  bool recompileAndInstall(size_t* retries);
  void enterDegraded(runtime::DeviceConfig deviceCfg,
                     const std::vector<runtime::Update>& updates);
  void queueUpdates(const std::vector<runtime::Update>& updates);
  uint64_t backoffMicros(uint32_t attempt);
  void maybeCheckpoint();
  /// Journals every flow that transitioned into violation since the last
  /// call (no-op without an attached IFC engine).
  void journalIfcViolations();
  /// Builds and dispatches one EpochEvent (and records the install-lag
  /// histogram sample when visibility advanced).
  void fireEpoch(bool advanced, bool viaRecompile, bool recovery,
                 uint64_t lagMicros);

  const p4::CheckedProgram& checked_;
  Device* device_;
  ControllerOptions options_;
  std::unique_ptr<flay::FlayService> service_;
  std::unique_ptr<Journal> journal_;
  /// Last good specialized program on the device; null = original program.
  /// Shared so superseded versions outlive the pin swap (see
  /// pinnedProgram()).
  std::shared_ptr<const p4::CheckedProgram> pinned_;
  /// Device's view of the analysis while degraded: tracks exactly the
  /// updates forwarded to the pinned program, so its verdicts decide
  /// forwardability. Lazily built on first degradation.
  std::unique_ptr<flay::FlayService> deviceView_;
  bool degraded_ = false;
  /// Attached when options.ifcPolicy is set; shares ownership with the
  /// service's analysis list.
  std::shared_ptr<ifc::IfcEngine> ifc_;
  /// Last seen violation state per "label -> sink" flow, for edge-triggered
  /// journaling.
  std::map<std::string, bool> ifcViolating_;
  uint64_t ifcViolationEvents_ = 0;
  std::vector<runtime::Update> queued_;
  std::set<std::string> queuedTargets_;
  std::mt19937_64 jitterRng_;
  uint64_t replayedUpdates_ = 0;
  /// Atomics so fleet status queries and replay forwarding threads can read
  /// the epoch pair while the drain worker applies; only the applying thread
  /// writes.
  std::atomic<uint64_t> committedUpdates_{0};
  std::atomic<uint64_t> deviceVisibleUpdates_{0};
  EpochCallback epochCallback_;
  /// Restarted on entering degraded mode; a recovery's installLagMicros is
  /// this watch's elapsed time.
  support::Stopwatch degradedSince_;
  size_t sinceCheckpoint_ = 0;
  size_t sinceRecoverAttempt_ = 0;
};

}  // namespace flay::controller

#endif  // FLAY_CONTROLLER_CONTROLLER_H
