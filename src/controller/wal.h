#ifndef FLAY_CONTROLLER_WAL_H
#define FLAY_CONTROLLER_WAL_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "runtime/device_config.h"

namespace flay::controller {

/// One journal record. The journal is JSONL: one JSON object per line,
/// e.g. {"seq":4,"type":"update","text":"insert Ingress.fwd [...] -> fwd(...)"}.
struct JournalRecord {
  enum class Type { kBegin, kUpdate, kCommit, kAbort, kCheckpoint,
                    kIfcViolation };
  Type type = Type::kUpdate;
  uint64_t seq = 0;
  std::string text;  // kUpdate: Update wire text; kIfcViolation: flow line
  size_t n = 0;      // kBegin: updates in the transaction
  std::string file;  // kCheckpoint: checkpoint file name (relative to dir)
};

/// Append-only write-ahead journal with transactional group markers. Every
/// applied group is bracketed begin/commit; a group missing its commit (the
/// process died mid-apply, or the apply aborted) is skipped on replay, which
/// is exactly the transactional contract: recovery lands on the last
/// committed state. Each append is flushed and fsync'd before returning, so
/// a committed record survives SIGKILL.
class Journal {
 public:
  explicit Journal(std::string path) : path_(std::move(path)) {}
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Opens for appending, continuing the sequence after any existing tail.
  void open();
  void close();
  bool isOpen() const { return file_ != nullptr; }

  uint64_t appendBegin(size_t n);
  uint64_t appendUpdate(const runtime::Update& update);
  uint64_t appendCommit();
  uint64_t appendAbort();
  uint64_t appendCheckpoint(const std::string& checkpointFile);
  /// Journals an information-flow violation surfaced by the IFC analysis
  /// after a committed apply. Purely an audit record: replay ignores it
  /// (verdicts are re-derived from the recovered state, not trusted from
  /// the log).
  uint64_t appendIfcViolation(const std::string& flowText);

  uint64_t lastSeq() const { return seq_; }
  const std::string& path() const { return path_; }

  /// Loads every parseable record. Torn-tail tolerant: reading stops at the
  /// first malformed or truncated line (an append cut short by a crash) —
  /// everything before it is intact because appends are sequential.
  static std::vector<JournalRecord> load(const std::string& path);

 private:
  uint64_t append(const std::string& body);

  std::string path_;
  std::FILE* file_ = nullptr;
  uint64_t seq_ = 0;
};

/// Point-in-time snapshot of a DeviceConfig, written atomically (temp file +
/// rename) with an explicit end marker so a torn checkpoint is detectable
/// and recovery falls back to an older one. Entries are stored with their
/// ids and each table's next-id allocator state, so updates journaled after
/// the checkpoint replay against the exact same id sequence they originally
/// saw.
struct Checkpoint {
  /// Sequence number of the last journal record covered by this checkpoint.
  uint64_t seq = 0;

  static void write(const std::string& path,
                    const runtime::DeviceConfig& config, uint64_t seq);
  /// Loads into a fresh config for `checked`; throws std::runtime_error on a
  /// missing/torn/malformed file.
  static runtime::DeviceConfig load(const std::string& path,
                                    const p4::CheckedProgram& checked,
                                    uint64_t* seq);
};

}  // namespace flay::controller

#endif  // FLAY_CONTROLLER_WAL_H
