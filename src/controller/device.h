#ifndef FLAY_CONTROLLER_DEVICE_H
#define FLAY_CONTROLLER_DEVICE_H

#include <cstdint>
#include <random>
#include <string>

#include "controller/fault_plan.h"
#include "p4/typecheck.h"
#include "tofino/compiler.h"

namespace flay::controller {

/// Outcome of pushing a program to the device.
struct InstallResult {
  bool ok = false;
  /// A transient failure is worth retrying (driver hiccup, session drop);
  /// a non-transient one (program does not fit) is not.
  bool transient = false;
  std::string error;
  /// Install latency (from FaultPlan::slowInstallMicros). The simulated
  /// device really blocks for this long — installs model an RPC to the
  /// switch driver, so a slow device occupies its caller, not just a
  /// counter. Concurrent drains (fleet::FleetController) overlap them.
  uint64_t latencyMicros = 0;
};

/// The controller's view of a device: compile a program for its pipeline,
/// install a compiled program. Entry-level updates flow outside this
/// interface (they are always representable on the running program when the
/// controller's verdict says so), matching the paper's Fig. 2 split between
/// "update device configuration" and "compile + deploy".
class Device {
 public:
  virtual ~Device() = default;
  /// Places `checked` onto the pipeline; !fits means rejection.
  virtual tofino::CompileResult compileProgram(
      const p4::CheckedProgram& checked) = 0;
  /// Installs the previously compiled program.
  virtual InstallResult installProgram(const p4::CheckedProgram& checked) = 0;
};

/// A device backed by the repo's RMT pipeline compiler, with FaultPlan-driven
/// fault injection layered on top. Deterministic for a fixed plan seed.
class SimulatedDevice : public Device {
 public:
  explicit SimulatedDevice(FaultPlan plan = {},
                           tofino::PipelineModel model = {},
                           tofino::CompilerOptions options = {})
      : plan_(plan), compiler_(model, options), rng_(plan.seed) {}

  tofino::CompileResult compileProgram(
      const p4::CheckedProgram& checked) override;
  InstallResult installProgram(const p4::CheckedProgram& checked) override;

  uint64_t compileAttempts() const { return compileAttempts_; }
  uint64_t installAttempts() const { return installAttempts_; }
  uint64_t injectedCompileRejects() const { return injectedCompileRejects_; }
  uint64_t injectedInstallFailures() const { return injectedInstallFailures_; }

 private:
  FaultPlan plan_;
  tofino::PipelineCompiler compiler_;
  std::mt19937_64 rng_;
  uint64_t compileAttempts_ = 0;
  uint64_t installAttempts_ = 0;
  uint64_t injectedCompileRejects_ = 0;
  uint64_t injectedInstallFailures_ = 0;
};

}  // namespace flay::controller

#endif  // FLAY_CONTROLLER_DEVICE_H
