#include "controller/controller.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "expr/canonical.h"
#include "expr/printer.h"
#include "obs/obs.h"

namespace flay::controller {

namespace {

struct ControllerObs {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& applied = reg.counter("controller.applied_updates");
  obs::Counter& retries = reg.counter("controller.retries");
  obs::Counter& rollbacks = reg.counter("controller.rollbacks");
  obs::Counter& degradations = reg.counter("controller.degradations");
  obs::Counter& recoveries = reg.counter("controller.degradation_recoveries");
  obs::Counter& recoveryAttempts = reg.counter("controller.recovery_attempts");
  obs::Counter& replayed = reg.counter("controller.replayed_updates");
  obs::Counter& forwarded = reg.counter("controller.forwarded_updates");
  obs::Counter& queued = reg.counter("controller.queued_updates");
  obs::Counter& recompiles = reg.counter("controller.recompiles");
  obs::Counter& installsOk = reg.counter("controller.installs_ok");
  obs::Histogram& backoffUs = reg.histogram("controller.backoff_us");
  obs::Histogram& recoverUs = reg.histogram("controller.recover_us");
  /// Verdict-ready -> device-visible per committed step (the paper's
  /// reaction-time claim measured at the install boundary).
  obs::Histogram& installLagUs = reg.histogram("controller.install_lag_us");
  /// Time spent pinned per degradation episode.
  obs::Histogram& degradedUs = reg.histogram("controller.degraded_us");

  static ControllerObs& get() {
    static ControllerObs instance;
    return instance;
  }
};

void ensureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    throw std::runtime_error("cannot create state dir '" + dir + "'");
  }
}

std::string checkpointFileName(uint64_t seq) {
  std::string digits = std::to_string(seq);
  while (digits.size() < 8) digits = "0" + digits;
  return "checkpoint-" + digits + ".ckpt";
}

// stateDigest() renders specialized expressions with the shared
// expr::CanonicalRenderer (expr/canonical.h): equal formulas must hash
// equally on both sides of a crash boundary, and the verdict cache of the
// semantics-check engine keys on the same canonical form.
using expr::CanonicalRenderer;
using expr::Fnv;

}  // namespace

FaultTolerantController::FaultTolerantController(
    const p4::CheckedProgram& checked, Device* device, ControllerOptions options)
    : checked_(checked),
      device_(device),
      options_(std::move(options)),
      service_(std::make_unique<flay::FlayService>(checked, options_.flay)),
      jitterRng_(options_.seed) {
  if (!options_.stateDir.empty()) {
    ensureDir(options_.stateDir);
    journal_ = std::make_unique<Journal>(options_.stateDir + "/journal.jsonl");
    recoverFromJournal();
    journal_->open();
  }
  if (options_.ifcPolicy.has_value()) {
    // Attach after recovery: the baseline recheck covers the recovered
    // state, and violations already present there are journaled once (the
    // log carries no trusted verdicts — see appendIfcViolation).
    ifc_ = std::make_shared<ifc::IfcEngine>(*service_, *options_.ifcPolicy);
    service_->attachAnalysis(ifc_);
    ifc_->recheck();
    journalIfcViolations();
  }
  if (device_ != nullptr && options_.installInitialProgram) {
    size_t retries = 0;
    if (!recompileAndInstall(&retries)) {
      // Device keeps its boot-time program (the original, empty config).
      enterDegraded(runtime::DeviceConfig(checked_), {});
    }
  }
}

void FaultTolerantController::recoverFromJournal() {
  obs::ScopedTimer timer(ControllerObs::get().recoverUs, "controller.recover");
  std::vector<JournalRecord> records = Journal::load(journal_->path());
  if (records.empty()) return;

  // Newest intact checkpoint wins; a torn checkpoint file falls back to the
  // previous marker (the journal tail from there is still complete).
  size_t baseIndex = 0;  // replay starts after this record index
  uint64_t baseSeq = 0;
  for (size_t i = records.size(); i-- > 0;) {
    if (records[i].type != JournalRecord::Type::kCheckpoint) continue;
    try {
      uint64_t ckptSeq = 0;
      runtime::DeviceConfig config = Checkpoint::load(
          options_.stateDir + "/" + records[i].file, checked_, &ckptSeq);
      service_->adoptConfig(std::move(config));
      baseIndex = i + 1;
      baseSeq = ckptSeq;
      break;
    } catch (const std::exception&) {
      continue;  // torn or missing checkpoint: try an older one
    }
  }
  (void)baseSeq;

  // Replay committed transaction groups; a group without its commit record
  // (crash mid-apply, or an aborted batch) is skipped — that is the
  // transactional contract. Update text is kept raw until the commit record
  // is seen: the journal is written ahead of validation, so an aborted group
  // may carry text that does not parse against the program — it must not be
  // able to poison recovery.
  std::vector<std::string> pendingTexts;
  bool inGroup = false;
  for (size_t i = baseIndex; i < records.size(); ++i) {
    const JournalRecord& rec = records[i];
    switch (rec.type) {
      case JournalRecord::Type::kBegin:
        inGroup = true;
        pendingTexts.clear();
        break;
      case JournalRecord::Type::kUpdate:
        if (inGroup) pendingTexts.push_back(rec.text);
        break;
      case JournalRecord::Type::kCommit:
        if (inGroup && !pendingTexts.empty()) {
          std::vector<runtime::Update> pending;
          pending.reserve(pendingTexts.size());
          for (const std::string& text : pendingTexts) {
            pending.push_back(runtime::Update::fromString(checked_, text));
          }
          service_->applyBatch(pending);
          replayedUpdates_ += pending.size();
          committedUpdates_.fetch_add(pending.size(),
                                      std::memory_order_relaxed);
          sinceCheckpoint_ += pending.size();
          ControllerObs::get().replayed.add(pending.size());
        }
        pendingTexts.clear();
        inGroup = false;
        break;
      case JournalRecord::Type::kAbort:
        pendingTexts.clear();
        inGroup = false;
        break;
      case JournalRecord::Type::kCheckpoint:
        break;
      case JournalRecord::Type::kIfcViolation:
        // Audit-only: IFC verdicts are re-derived from the recovered state
        // by the engine attached after replay, never trusted from the log.
        break;
    }
  }
}

void FaultTolerantController::journalIfcViolations() {
  if (ifc_ == nullptr) return;
  for (const auto& flow : ifc_->lastReport().flows) {
    const std::string key = flow.label + " -> " + flow.sink;
    bool& wasViolating = ifcViolating_[key];
    const bool violating = flow.isViolation();
    if (violating && !wasViolating) {
      ++ifcViolationEvents_;
      obs::Registry::global().counter("controller.ifc_violations").add(1);
      if (journal_ != nullptr && journal_->isOpen()) {
        journal_->appendIfcViolation(key + ": " +
                                     ifc::toString(flow.status));
      }
    }
    wasViolating = violating;
  }
}

ApplyResult FaultTolerantController::apply(const runtime::Update& update) {
  return applyBatch({update});
}

ApplyResult FaultTolerantController::applyBatch(
    const std::vector<runtime::Update>& updates) {
  ApplyResult result;
  if (updates.empty()) {
    result.degraded = degraded_;
    result.deviceCurrent = !degraded_;
    return result;
  }
  ControllerObs& cobs = ControllerObs::get();

  // Write-ahead: the intent is durable before any state changes, and the
  // commit marker only lands after the in-memory apply succeeded, so
  // recovery replays exactly the acknowledged transactions.
  if (journal_ != nullptr) {
    journal_->appendBegin(updates.size());
    for (const auto& u : updates) journal_->appendUpdate(u);
  }

  flay::ServiceSnapshot snap = service_->snapshot();
  try {
    result.verdict = service_->applyBatch(updates);
  } catch (...) {
    // Strong exception guarantee: the k-th update failing rolls back the
    // k-1 already-applied ones, and the journal records the abort so the
    // group never replays.
    service_->restore(snap);
    if (journal_ != nullptr) journal_->appendAbort();
    cobs.rollbacks.add(1);
    throw;
  }
  if (journal_ != nullptr) journal_->appendCommit();
  committedUpdates_.fetch_add(updates.size(), std::memory_order_relaxed);
  sinceCheckpoint_ += updates.size();
  cobs.applied.add(updates.size());
  // The attached IFC engine already re-verified its flows inside the apply
  // (analysis notification); journal any flow that just turned violating.
  journalIfcViolations();
  // The verdict is ready here; the lag clock runs until this step becomes
  // device-visible (entries forwarded or a recompiled program installed).
  support::Stopwatch lag;

  if (device_ != nullptr) {
    if (!degraded_) {
      if (result.verdict.needsRecompilation) {
        if (recompileAndInstall(&result.retries)) {
          result.deviceCurrent = true;
          fireEpoch(/*advanced=*/true, /*viaRecompile=*/true,
                    /*recovery=*/false, lag.elapsedMicros());
        } else {
          // Pin the last good program; the device keeps forwarding with it.
          // snap.config is the device-visible state: everything before this
          // batch had reached the device.
          enterDegraded(std::move(snap.config), updates);
          fireEpoch(false, false, false, 0);
        }
      } else {
        // Semantics-preserving: the entries are representable on the running
        // program and flow straight through.
        result.deviceCurrent = true;
        cobs.forwarded.add(updates.size());
        deviceVisibleUpdates_.store(committedUpdates(),
                                    std::memory_order_relaxed);
        fireEpoch(true, false, false, lag.elapsedMicros());
      }
    } else {
      // Degraded: forward the batch only if it stays semantics-preserving
      // for the *pinned* program and touches nothing with queued updates
      // (forwarding around the queue would reorder same-object updates).
      bool conflictsWithQueue = false;
      for (const auto& u : updates) {
        conflictsWithQueue |= queuedTargets_.count(u.target) != 0;
      }
      bool forwarded = false;
      if (!conflictsWithQueue) {
        flay::ServiceSnapshot dvSnap = deviceView_->snapshot();
        flay::UpdateVerdict dv = deviceView_->applyBatch(updates);
        if (dv.needsRecompilation) {
          deviceView_->restore(dvSnap);  // device cannot represent it
        } else {
          forwarded = true;
          cobs.forwarded.add(updates.size());
        }
      }
      if (!forwarded) queueUpdates(updates);
      result.deviceCurrent = forwarded;
      if (forwarded) {
        deviceVisibleUpdates_.fetch_add(updates.size(),
                                        std::memory_order_relaxed);
      }
      fireEpoch(forwarded, false, false,
                forwarded ? lag.elapsedMicros() : 0);

      sinceRecoverAttempt_ += updates.size();
      if (options_.tryRecoverEvery != 0 &&
          sinceRecoverAttempt_ >= options_.tryRecoverEvery) {
        sinceRecoverAttempt_ = 0;
        tryRecover();
      }
    }
  } else {
    result.deviceCurrent = true;
    deviceVisibleUpdates_.store(committedUpdates(), std::memory_order_relaxed);
  }

  result.degraded = degraded_;
  maybeCheckpoint();
  return result;
}

BulkApplyResult FaultTolerantController::applyBulk(
    const flay::UpdateSource& source, flay::BulkLoadOptions options) {
  ControllerObs& cobs = ControllerObs::get();
  BulkApplyResult result;
  // The journal and a possible degradation handoff both need the chunk's
  // successfully applied updates.
  bool collectForController = journal_ != nullptr || device_ != nullptr;
  options.collectApplied |= collectForController;
  // Device-visible state before the stream: if the recompile at the end
  // fails, this is what the pinned program still represents.
  std::unique_ptr<runtime::DeviceConfig> preConfig;
  if (device_ != nullptr && !degraded_) {
    preConfig = std::make_unique<runtime::DeviceConfig>(service_->config());
  }
  std::vector<runtime::Update> applied;

  result.report = service_->applyStream(
      source, options, [&](const flay::BulkChunkVerdict& chunk) {
        // The chunk is already applied in memory when this runs; the
        // journal records it as one committed group, so recovery replays
        // exactly the acknowledged chunks.
        if (journal_ != nullptr && !chunk.applied.empty()) {
          journal_->appendBegin(chunk.applied.size());
          for (const auto& u : chunk.applied) journal_->appendUpdate(u);
          journal_->appendCommit();
        }
        size_t installed = chunk.bypassed + chunk.analyzed;
        committedUpdates_.fetch_add(installed, std::memory_order_relaxed);
        sinceCheckpoint_ += installed;
        cobs.applied.add(installed);
        journalIfcViolations();
        if (device_ != nullptr) {
          applied.insert(applied.end(), chunk.applied.begin(),
                         chunk.applied.end());
        }
      });

  // Stream verdicts are complete here; lag runs until device visibility.
  support::Stopwatch lag;
  if (device_ != nullptr) {
    if (!degraded_) {
      if (result.report.needsRecompilation) {
        if (recompileAndInstall(&result.retries)) {
          result.deviceCurrent = true;
          fireEpoch(true, true, false, lag.elapsedMicros());
        } else {
          enterDegraded(std::move(*preConfig), applied);
          fireEpoch(false, false, false, 0);
        }
      } else {
        // Every applied update was semantics-preserving (bypassed or
        // verified): the entries flow straight to the running program.
        result.deviceCurrent = true;
        cobs.forwarded.add(result.report.applied);
        deviceVisibleUpdates_.store(committedUpdates(),
                                    std::memory_order_relaxed);
        fireEpoch(true, false, false, lag.elapsedMicros());
      }
    } else {
      queueUpdates(applied);
      fireEpoch(false, false, false, 0);
      sinceRecoverAttempt_ += applied.size();
      if (options_.tryRecoverEvery != 0 &&
          sinceRecoverAttempt_ >= options_.tryRecoverEvery) {
        sinceRecoverAttempt_ = 0;
        tryRecover();
      }
    }
  } else {
    result.deviceCurrent = true;
    deviceVisibleUpdates_.store(committedUpdates(), std::memory_order_relaxed);
  }
  result.degraded = degraded_;
  maybeCheckpoint();
  return result;
}

BulkApplyResult FaultTolerantController::applyBulk(
    const std::vector<runtime::Update>& updates, flay::BulkLoadOptions options) {
  size_t next = 0;
  return applyBulk(
      [&]() -> std::optional<runtime::Update> {
        if (next >= updates.size()) return std::nullopt;
        return updates[next++];
      },
      std::move(options));
}

bool FaultTolerantController::recompileAndInstall(size_t* retries) {
  ControllerObs& cobs = ControllerObs::get();
  cobs.recompiles.add(1);
  flay::Specializer specializer(*service_, options_.specializer);
  flay::SpecializationResult specialized = specializer.specialize();
  auto checked = std::make_shared<p4::CheckedProgram>(
      flay::recheck(std::move(specialized.program)));

  for (uint32_t attempt = 0; attempt <= options_.maxInstallRetries; ++attempt) {
    if (attempt > 0) {
      *retries += 1;
      cobs.retries.add(1);
      uint64_t delay = backoffMicros(attempt);
      cobs.backoffUs.record(delay);
      if (options_.sleepOnBackoff) {
        std::this_thread::sleep_for(std::chrono::microseconds(delay));
      }
    }
    tofino::CompileResult compiled = device_->compileProgram(*checked);
    if (!compiled.fits) continue;
    InstallResult installed = device_->installProgram(*checked);
    if (!installed.ok) continue;
    pinned_ = std::move(checked);
    // The installed program was specialized against the full committed
    // state, so every committed update is now device-visible.
    deviceVisibleUpdates_.store(committedUpdates(), std::memory_order_relaxed);
    cobs.installsOk.add(1);
    return true;
  }
  return false;
}

void FaultTolerantController::enterDegraded(
    runtime::DeviceConfig deviceCfg,
    const std::vector<runtime::Update>& updates) {
  ControllerObs::get().degradations.add(1);
  degraded_ = true;
  degradedSince_.restart();
  sinceRecoverAttempt_ = 0;
  if (deviceView_ == nullptr) {
    deviceView_ =
        std::make_unique<flay::FlayService>(checked_, options_.flay);
  }
  deviceView_->adoptConfig(std::move(deviceCfg));
  queueUpdates(updates);
}

void FaultTolerantController::queueUpdates(
    const std::vector<runtime::Update>& updates) {
  ControllerObs::get().queued.add(updates.size());
  for (const auto& u : updates) {
    queuedTargets_.insert(u.target);
    queued_.push_back(u);
  }
}

bool FaultTolerantController::tryRecover() {
  if (!degraded_) return true;
  if (device_ == nullptr) return false;
  ControllerObs& cobs = ControllerObs::get();
  cobs.recoveryAttempts.add(1);
  size_t retries = 0;
  if (!recompileAndInstall(&retries)) return false;
  // The freshly installed program was specialized against the full current
  // state, so the migrated config subsumes every queued update — the
  // backlog is cleared, not replayed.
  degraded_ = false;
  queued_.clear();
  queuedTargets_.clear();
  cobs.recoveries.add(1);
  // The recovery lag is the full degraded episode: how long the oldest
  // queued update waited between its verdict and device visibility.
  uint64_t degradedFor = degradedSince_.elapsedMicros();
  cobs.degradedUs.record(degradedFor);
  fireEpoch(/*advanced=*/true, /*viaRecompile=*/true, /*recovery=*/true,
            degradedFor);
  return true;
}

void FaultTolerantController::fireEpoch(bool advanced, bool viaRecompile,
                                        bool recovery, uint64_t lagMicros) {
  if (advanced) ControllerObs::get().installLagUs.record(lagMicros);
  if (!epochCallback_) return;
  EpochEvent event;
  event.committed = committedUpdates();
  event.deviceVisible = deviceVisibleUpdates();
  event.advanced = advanced;
  event.viaRecompile = viaRecompile;
  event.recovery = recovery;
  event.degraded = degraded_;
  event.installLagMicros = lagMicros;
  epochCallback_(event);
}

const runtime::DeviceConfig& FaultTolerantController::deviceConfig() const {
  if (degraded_ && deviceView_ != nullptr) return deviceView_->config();
  return service_->config();
}

const p4::CheckedProgram& FaultTolerantController::deviceProgram() const {
  return pinned_ != nullptr ? *pinned_ : checked_;
}

void FaultTolerantController::checkpointNow() {
  if (journal_ == nullptr) return;
  std::string file = checkpointFileName(journal_->lastSeq());
  Checkpoint::write(options_.stateDir + "/" + file, service_->config(),
                    journal_->lastSeq());
  journal_->appendCheckpoint(file);
  sinceCheckpoint_ = 0;
}

void FaultTolerantController::maybeCheckpoint() {
  if (journal_ == nullptr || options_.checkpointEvery == 0) return;
  if (sinceCheckpoint_ >= options_.checkpointEvery) checkpointNow();
}

uint64_t FaultTolerantController::backoffMicros(uint32_t attempt) {
  uint64_t base = options_.backoffBaseMicros == 0 ? 1 : options_.backoffBaseMicros;
  uint64_t exp = attempt >= 63 ? options_.backoffMaxMicros
                               : base << (attempt - 1);
  uint64_t capped = std::min(exp, options_.backoffMaxMicros);
  std::uniform_int_distribution<uint64_t> jitter(0, base - 1);
  return capped + jitter(jitterRng_);
}

std::string FaultTolerantController::stateDigest() const {
  return service_->stateDigest();
}

}  // namespace flay::controller
