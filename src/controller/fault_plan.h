#ifndef FLAY_CONTROLLER_FAULT_PLAN_H
#define FLAY_CONTROLLER_FAULT_PLAN_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace flay::controller {

/// Injectable device faults, generalizing flay::MigrationTestHooks from a
/// single specializer defect to the whole device-interaction surface the
/// fault-tolerant controller must survive: compile rejections, transient and
/// sustained install failures, and slow installs. All injection is
/// deterministic for a fixed seed, so every oracle/crashtest run is
/// reproducible from its command line.
struct FaultPlan {
  /// Reject the first N program-compile attempts ("does not fit").
  uint32_t rejectFirstCompiles = 0;
  /// Probability in [0,1] that any later compile is rejected.
  double compileRejectProbability = 0.0;
  /// Fail the first N program-install attempts with a transient error.
  uint32_t failFirstInstalls = 0;
  /// Probability in [0,1] that any later install transiently fails.
  double installFailProbability = 0.0;
  /// Sustained outage: installs numbered [outageStart, outageStart+outageLength)
  /// all fail — long enough outages exhaust the retry budget and force the
  /// controller into degraded mode until tryRecover() succeeds.
  uint32_t outageStart = 0;
  uint32_t outageLength = 0;
  /// Simulated install latency, reported in InstallResult::latencyMicros.
  uint64_t slowInstallMicros = 0;
  /// Seed for the probabilistic faults above.
  uint64_t seed = 1;

  bool hasFaults() const {
    return rejectFirstCompiles != 0 || compileRejectProbability > 0.0 ||
           failFirstInstalls != 0 || installFailProbability > 0.0 ||
           outageLength != 0;
  }

  /// Parses a comma-separated spec, e.g.
  ///   "reject-first=1,fail-first=2,flaky=0.3,outage=4+6,slow=500,seed=7"
  /// Unknown keys or malformed values throw std::invalid_argument.
  static FaultPlan parse(std::string_view spec);
  /// Renders back to the parse() syntax (canonical form).
  std::string toString() const;

  /// The named plans the nightly fault-injection matrix and the oracle's
  /// fault mode iterate over: none, transient, flaky, reject-compile,
  /// outage, slow.
  static std::vector<std::pair<std::string, FaultPlan>> builtinPlans();
};

}  // namespace flay::controller

#endif  // FLAY_CONTROLLER_FAULT_PLAN_H
