#include "ifc/ifc.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "expr/analysis.h"
#include "expr/substitute.h"
#include "p4/typecheck.h"

namespace flay::ifc {

namespace {

/// Sorted, deduplicated symbol refs for a set of symbol ids.
std::vector<expr::ExprRef> symbolRefs(
    expr::ExprArena& arena, const std::unordered_set<uint32_t>& ids) {
  std::vector<uint32_t> sorted(ids.begin(), ids.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<expr::ExprRef> out;
  out.reserve(sorted.size());
  for (uint32_t id : sorted) {
    const expr::Symbol& s = arena.symbolInfo(id);
    out.push_back(s.width == 0 ? arena.boolVar(s.name, s.cls)
                               : arena.var(s.name, s.width, s.cls));
  }
  return out;
}

}  // namespace

const char* toString(FlowStatus s) {
  switch (s) {
    case FlowStatus::kSecure: return "SECURE";
    case FlowStatus::kLeak: return "LEAK";
    case FlowStatus::kUnknown: return "UNKNOWN";
  }
  return "?";
}

size_t IfcReport::violations() const {
  size_t n = 0;
  for (const auto& f : flows) n += f.isViolation() ? 1 : 0;
  return n;
}

std::string IfcReport::render() const {
  std::ostringstream out;
  out << "ifc: " << flows.size() << " flow(s), " << violations()
      << " violation(s)\n";
  for (const auto& f : flows) {
    out << "  " << f.label << " -> " << f.sink << ": " << toString(f.status);
    if (!f.sources.empty()) {
      out << " via=";
      for (size_t i = 0; i < f.sources.size(); ++i) {
        out << (i != 0 ? "," : "") << f.sources[i];
      }
    }
    if (!f.declassifiers.empty()) {
      out << " declassify=";
      for (size_t i = 0; i < f.declassifiers.size(); ++i) {
        out << (i != 0 ? "," : "") << f.declassifiers[i];
      }
    }
    out << "\n";
  }
  return out.str();
}

IfcEngine::IfcEngine(flay::FlayService& service, IfcPolicy policy)
    : service_(service), policy_(std::move(policy)) {
  policy_.validate(service_.checkedProgram());
  expr::ExprArena& arena = service_.arena();
  const flay::AnalysisResult& analysis = service_.analysis();
  parserAccept_ = analysis.parserAccept;
  egressHermetic_ = analysis.finalState.at("sm.egress_spec");

  // Source symbols and their primed (self-composition) copies, per label.
  std::map<std::string, p4::FieldInfo> fieldInfo;
  for (const auto& f : service_.checkedProgram().env.fields()) {
    fieldInfo[f.canonical] = f;
  }
  auto sourceRef = [&](const std::string& canonical) -> expr::ExprRef {
    auto it = fieldInfo.find(canonical);
    if (it != fieldInfo.end()) {
      return it->second.isBool
                 ? arena.boolVar(canonical, expr::SymbolClass::kDataPlane)
                 : arena.var(canonical, it->second.width,
                             expr::SymbolClass::kDataPlane);
    }
    // Intrinsic inputs admitted by validate() but absent from env.fields().
    uint32_t width = canonical == "sm.ingress_port" ? p4::kPortWidth : 32;
    return arena.var(canonical, width, expr::SymbolClass::kDataPlane);
  };
  for (const auto& [label, fields] : policy_.labels) {
    for (const auto& f : fields) {
      expr::ExprRef src = sourceRef(f);
      const expr::Symbol& s = arena.symbolInfo(arena.node(src).a);
      std::string primedName = "ifc$" + s.name;
      expr::ExprRef primed =
          s.width == 0 ? arena.boolVar(primedName, s.cls)
                       : arena.var(primedName, s.width, s.cls);
      renames_[label].emplace_back(src, primed);
    }
  }

  // Control-plane placeholders every observation depends on: deliverability
  // (parser accept + final egress) plus the declassified tables' match
  // outcomes. Per-sink deps add the sink value's own placeholders.
  std::unordered_set<uint32_t> globalDeps =
      expr::collectSymbols(arena, egressHermetic_,
                           expr::SymbolClass::kControlPlane);
  for (uint32_t id : expr::collectSymbols(arena, parserAccept_,
                                          expr::SymbolClass::kControlPlane)) {
    globalDeps.insert(id);
  }
  for (const auto& d : policy_.declassify) {
    const flay::TableInfo& info = analysis.table(d.table);
    globalDeps.insert(arena.node(info.hitSymbol).a);
    globalDeps.insert(arena.node(info.actionSymbol).a);
  }

  std::vector<SinkPolicy> sorted = policy_.sinks;
  std::sort(sorted.begin(), sorted.end(),
            [](const SinkPolicy& a, const SinkPolicy& b) {
              return a.field < b.field;
            });
  std::vector<std::string> labels = policy_.labelNames();
  for (const auto& sinkPolicy : sorted) {
    if (sinkPolicy.allowAll) continue;
    SinkState sink;
    sink.field = sinkPolicy.field;
    sink.hermetic = analysis.finalState.at(sinkPolicy.field);
    std::unordered_set<uint32_t> deps = expr::collectSymbols(
        arena, sink.hermetic, expr::SymbolClass::kControlPlane);
    deps.insert(globalDeps.begin(), globalDeps.end());
    sink.cpSymbols = symbolRefs(arena, deps);
    for (const auto& label : labels) {
      if (sinkPolicy.allowed.count(label) != 0) continue;
      FlowState flow;
      flow.verdict.label = label;
      flow.verdict.sink = sinkPolicy.field;
      sink.flowIndices.push_back(flows_.size());
      flows_.push_back(std::move(flow));
    }
    if (!sink.flowIndices.empty()) sinks_.push_back(std::move(sink));
  }
}

bool IfcEngine::refreshResolved(SinkState& sink) {
  bool changed = sink.lastResolved.size() != sink.cpSymbols.size();
  std::vector<expr::ExprRef> resolved;
  resolved.reserve(sink.cpSymbols.size());
  for (size_t i = 0; i < sink.cpSymbols.size(); ++i) {
    expr::ExprRef r = service_.resolveSymbol(sink.cpSymbols[i]);
    changed |= sink.lastResolved.size() <= i || sink.lastResolved[i] != r;
    resolved.push_back(r);
  }
  sink.lastResolved = std::move(resolved);
  return changed;
}

void IfcEngine::bindResolved(const SinkState& sink,
                             expr::Substitution& subst) {
  for (size_t i = 0; i < sink.cpSymbols.size(); ++i) {
    if (sink.lastResolved[i] != sink.cpSymbols[i]) {
      subst.bind(sink.cpSymbols[i], sink.lastResolved[i]);
    }
  }
}

expr::ExprRef IfcEngine::iff(expr::ExprRef a, expr::ExprRef b) {
  expr::ExprArena& arena = service_.arena();
  return arena.bOr(arena.bAnd(a, b), arena.bAnd(arena.bNot(a), arena.bNot(b)));
}

expr::ExprRef IfcEngine::buildQuery(const SinkState& sink, FlowState& flow) {
  expr::ExprArena& arena = service_.arena();
  const std::string& label = flow.verdict.label;

  // Taint pre-filter: labeled source symbols structurally reachable in the
  // specialized observation. None reachable = the flow is not even
  // potential under this config; no executability query needed.
  std::unordered_set<uint32_t> dp = expr::collectSymbols(
      arena, sink.specializedValue, expr::SymbolClass::kDataPlane);
  for (uint32_t id : expr::collectSymbols(arena, sink.specializedObs,
                                          expr::SymbolClass::kDataPlane)) {
    dp.insert(id);
  }
  flow.verdict.sources.clear();
  auto renameIt = renames_.find(label);
  if (renameIt != renames_.end()) {
    for (const auto& [src, primed] : renameIt->second) {
      if (dp.count(arena.node(src).a) != 0) {
        flow.verdict.sources.push_back(
            arena.symbolInfo(arena.node(src).a).name);
      }
    }
  }
  std::sort(flow.verdict.sources.begin(), flow.verdict.sources.end());
  flow.verdict.declassifiers = policy_.declassifiersFor(label);
  if (flow.verdict.sources.empty()) return arena.boolConst(true);

  expr::Substitution rename(arena);
  for (const auto& [src, primed] : renameIt->second) rename.bind(src, primed);
  expr::ExprRef value = sink.specializedValue;
  expr::ExprRef valueP = rename.apply(value);
  expr::ExprRef obs = sink.specializedObs;
  expr::ExprRef obsP = rename.apply(obs);

  // Delimited release: compared runs must agree on every declassified
  // table's installed match outcome. An empty table resolves its hit to a
  // constant, so the constraint collapses to `true` and releases nothing —
  // downgrading applies only to entries the config actually installs.
  expr::ExprRef release = arena.boolConst(true);
  for (const auto& table : flow.verdict.declassifiers) {
    const flay::TableInfo& info = service_.analysis().table(table);
    expr::ExprRef hit = service_.resolveSymbol(info.hitSymbol);
    expr::ExprRef action = service_.resolveSymbol(info.actionSymbol);
    release = arena.bAnd(release, iff(hit, rename.apply(hit)));
    release = arena.bAnd(release, arena.eq(action, rename.apply(action)));
  }

  expr::ExprRef valueDiffers = arena.isBool(value)
                                   ? arena.bNot(iff(value, valueP))
                                   : arena.neq(value, valueP);
  expr::ExprRef obsDiffers = arena.bNot(iff(obs, obsP));
  expr::ExprRef leak =
      arena.bOr(obsDiffers, arena.bAnd(arena.bAnd(obs, obsP), valueDiffers));
  return arena.implies(release, arena.bNot(leak));
}

IfcReport IfcEngine::runRecheck(bool fromScratch) {
  expr::ExprArena& arena = service_.arena();
  flay::CheckEngine& engine = service_.checkEngine();
  IfcReport report;
  report.stats.flows = flows_.size();

  // Phase 1: refresh the per-sink specializations. A sink whose tracked
  // control-plane assignment is unchanged keeps its observation — and all
  // its flow verdicts — with no substitution, rendering, or probing.
  std::vector<size_t> dirty;
  expr::ExprRef drop =
      arena.bvConst(BitVec(p4::kPortWidth, p4::kDropPort));
  for (size_t i = 0; i < sinks_.size(); ++i) {
    SinkState& sink = sinks_[i];
    bool changed = refreshResolved(sink);
    if (!changed && sink.specializedValue.valid() && !fromScratch) {
      report.stats.reused += sink.flowIndices.size();
      continue;
    }
    expr::Substitution subst(arena);
    bindResolved(sink, subst);
    sink.specializedValue = subst.apply(sink.hermetic);
    sink.specializedObs = arena.bAnd(subst.apply(parserAccept_),
                                     arena.neq(subst.apply(egressHermetic_),
                                               drop));
    dirty.push_back(i);
  }

  // Phase 2: rebuild the dirty sinks' queries. Hash-consing makes "did the
  // semantic question change" an O(1) ExprRef comparison; unchanged queries
  // reuse the memoized verdict. Scopes with replaced queries are
  // invalidated before new probes so stale cache entries and warm clause
  // groups under "ifc.<sink>" retire first.
  std::vector<size_t> pending;
  std::vector<flay::CheckQuery> batch;
  for (size_t i : dirty) {
    SinkState& sink = sinks_[i];
    bool invalidate = false;
    for (size_t fi : sink.flowIndices) {
      FlowState& flow = flows_[fi];
      expr::ExprRef previous = flow.query;
      expr::ExprRef query = buildQuery(sink, flow);
      if (!fromScratch && previous.valid() && query == previous) {
        ++report.stats.reused;
        continue;
      }
      invalidate |= previous.valid() && query != previous;
      flow.query = query;
      if (flow.verdict.sources.empty()) {
        flow.verdict.status = FlowStatus::kSecure;
        continue;
      }
      pending.push_back(fi);
      batch.push_back({query, "ifc." + sink.field});
    }
    if (invalidate && !fromScratch) {
      engine.invalidateScope("ifc." + sink.field);
    }
  }

  // Phase 3: settle the changed queries on the constant-verdict hot path —
  // parallel prefetch, verdict cache, warm probe sessions.
  engine.prefetch(batch);
  for (size_t k = 0; k < pending.size(); ++k) {
    FlowState& flow = flows_[pending[k]];
    flay::CheckOutcome outcome;
    flay::TriVerdict verdict =
        engine.boolVerdict(flow.query, batch[k].scope, &outcome);
    ++report.stats.queries;
    if (outcome.cacheHit) ++report.stats.cacheHits;
    if (outcome.timedOut) ++report.stats.timeouts;
    if (verdict == flay::TriVerdict::kTrue) {
      flow.verdict.status = FlowStatus::kSecure;
    } else if (verdict == flay::TriVerdict::kFalse ||
               (outcome.solverQueried && !outcome.timedOut)) {
      // Constant-false or proved-not-constant: a differing pair exists.
      flow.verdict.status = FlowStatus::kLeak;
    } else {
      // Unsettled (budget or DAG limit): conservatively a violation.
      flow.verdict.status = FlowStatus::kUnknown;
    }
  }

  for (const auto& flow : flows_) report.flows.push_back(flow.verdict);
  return report;
}

IfcReport IfcEngine::recheck() {
  lastReport_ = runRecheck(false);
  return lastReport_;
}

IfcReport IfcEngine::recheckFromScratch() {
  // A fresh engine shares no incremental bookkeeping with this one; its
  // pass rebuilds every observation and query from the service's current
  // state. (The verdict cache may still answer — verdicts are pure facts.)
  IfcEngine fresh(service_, policy_);
  return fresh.runRecheck(true);
}

void IfcEngine::onUpdateAnalyzed(const flay::UpdateVerdict& verdict) {
  (void)verdict;
  recheck();
}

}  // namespace flay::ifc
