#include "ifc/policy.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace flay::ifc {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) {
    if (tok[0] == '#') break;
    out.push_back(tok);
  }
  return out;
}

std::set<std::string> splitLabels(const std::string& s) {
  std::set<std::string> out;
  size_t pos = 0;
  while (pos <= s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    std::string item = s.substr(pos, comma - pos);
    if (!item.empty()) out.insert(item);
    pos = comma + 1;
    if (comma == s.size()) break;
  }
  return out;
}

[[noreturn]] void bad(size_t lineNo, const std::string& what) {
  throw std::invalid_argument("ifc policy line " + std::to_string(lineNo) +
                              ": " + what);
}

}  // namespace

IfcPolicy IfcPolicy::parse(const std::string& text) {
  IfcPolicy policy;
  std::set<std::string> sinkFields;
  std::istringstream in(text);
  std::string line;
  size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    std::vector<std::string> tok = tokenize(line);
    if (tok.empty()) continue;
    if (tok[0] == "label") {
      if (tok.size() != 3) bad(lineNo, "want: label <name> <field>");
      policy.labels[tok[1]].insert(tok[2]);
    } else if (tok[0] == "sink") {
      if (tok.size() != 4 || tok[2] != "allow") {
        bad(lineNo, "want: sink <field> allow <labels|*|none>");
      }
      if (!sinkFields.insert(tok[1]).second) {
        bad(lineNo, "duplicate sink '" + tok[1] + "'");
      }
      SinkPolicy sink;
      sink.field = tok[1];
      if (tok[3] == "*") {
        sink.allowAll = true;
      } else if (tok[3] != "none") {
        sink.allowed = splitLabels(tok[3]);
        if (sink.allowed.empty()) {
          bad(lineNo, "empty allow list (use 'none')");
        }
      }
      policy.sinks.push_back(std::move(sink));
    } else if (tok[0] == "declassify") {
      if (tok.size() != 3) bad(lineNo, "want: declassify <table> <label>");
      policy.declassify.push_back({tok[1], tok[2]});
    } else {
      bad(lineNo, "unknown directive '" + tok[0] + "'");
    }
  }
  if (policy.sinks.empty()) {
    throw std::invalid_argument("ifc policy declares no sinks");
  }
  return policy;
}

IfcPolicy IfcPolicy::parseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("cannot read ifc policy '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse(text.str());
}

void IfcPolicy::validate(const p4::CheckedProgram& checked) const {
  std::set<std::string> known;
  for (const auto& f : checked.env.fields()) known.insert(f.canonical);
  known.insert("sm.ingress_port");
  known.insert("sm.packet_length");
  auto checkField = [&](const std::string& field, const char* role) {
    if (known.count(field) == 0) {
      throw std::invalid_argument(std::string("ifc policy: unknown ") + role +
                                  " field '" + field + "'");
    }
  };
  for (const auto& [label, fields] : labels) {
    for (const auto& f : fields) checkField(f, "source");
  }
  for (const auto& s : sinks) checkField(s.field, "sink");
  for (const auto& d : declassify) {
    bool found = false;
    for (const auto& control : checked.program.controls) {
      for (const auto& t : control.tables) {
        found |= control.name + "." + t.name == d.table;
      }
    }
    if (!found) {
      throw std::invalid_argument("ifc policy: unknown declassify table '" +
                                  d.table + "'");
    }
    if (labels.count(d.label) == 0) {
      throw std::invalid_argument("ifc policy: declassify names label '" +
                                  d.label + "' with no source fields");
    }
  }
}

std::set<std::string> IfcPolicy::labelsOf(const std::string& field) const {
  std::set<std::string> out;
  for (const auto& [label, fields] : labels) {
    if (fields.count(field) != 0) out.insert(label);
  }
  return out;
}

std::vector<std::string> IfcPolicy::labelNames() const {
  std::vector<std::string> out;
  for (const auto& [label, fields] : labels) {
    if (!fields.empty()) out.push_back(label);
  }
  return out;  // std::map iteration is already sorted
}

std::vector<std::string> IfcPolicy::declassifiersFor(
    const std::string& label) const {
  std::vector<std::string> out;
  for (const auto& d : declassify) {
    if (d.label == label) out.push_back(d.table);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string IfcPolicy::render() const {
  std::ostringstream out;
  for (const auto& [label, fields] : labels) {
    for (const auto& f : fields) out << "label " << label << " " << f << "\n";
  }
  std::vector<SinkPolicy> sorted = sinks;
  std::sort(sorted.begin(), sorted.end(),
            [](const SinkPolicy& a, const SinkPolicy& b) {
              return a.field < b.field;
            });
  for (const auto& s : sorted) {
    out << "sink " << s.field << " allow ";
    if (s.allowAll) {
      out << "*";
    } else if (s.allowed.empty()) {
      out << "none";
    } else {
      bool first = true;
      for (const auto& l : s.allowed) {
        if (!first) out << ",";
        out << l;
        first = false;
      }
    }
    out << "\n";
  }
  std::vector<std::pair<std::string, std::string>> decl;
  for (const auto& d : declassify) decl.emplace_back(d.table, d.label);
  std::sort(decl.begin(), decl.end());
  decl.erase(std::unique(decl.begin(), decl.end()), decl.end());
  for (const auto& [table, label] : decl) {
    out << "declassify " << table << " " << label << "\n";
  }
  return out.str();
}

}  // namespace flay::ifc
