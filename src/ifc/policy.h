#ifndef FLAY_IFC_POLICY_H
#define FLAY_IFC_POLICY_H

#include <map>
#include <set>
#include <string>
#include <vector>

#include "p4/typecheck.h"

namespace flay::ifc {

/// Per-sink policy: which source labels may flow into the sink's final
/// value. A sink is a canonical field observed at the end of the pipeline
/// (e.g. "sm.egress_spec", "meta.nexthop_id"); observation means the packet
/// is actually delivered — drops hide the value.
struct SinkPolicy {
  std::string field;
  bool allowAll = false;          ///< "allow *": nothing to check here
  std::set<std::string> allowed;  ///< labels that may flow into this sink
};

/// Per-table declassification annotation: flows of `label` that the table's
/// *installed entries* mediate (which entry matched, which action ran) are
/// sanctioned. With no entries installed the table's match outcome is
/// constant, so the annotation downgrades nothing — labels are only
/// released for behavior the control plane actually configured.
struct Declassify {
  std::string table;  ///< qualified table name, e.g. "Ingress.ipv4_route"
  std::string label;
};

/// An information-flow policy over a P4-lite program: source labels on
/// header/metadata fields, per-sink allow-lists, and per-table declassify
/// annotations. The label lattice is the powerset of label names ordered by
/// inclusion; a flow (label L -> sink k) is in question whenever k does not
/// allow L.
///
/// Text format, one directive per line ('#' starts a comment):
///
///   label  <name> <field-canonical>        # tag a source field
///   sink   <field-canonical> allow <l1,l2|*|none>
///   declassify <table-qualified> <label>
///
/// Example:
///
///   label secret hdr.ipv4.src_addr
///   sink  sm.egress_spec allow none
///   declassify Ingress.ipv4_route secret
class IfcPolicy {
 public:
  /// Parses the text form; throws std::invalid_argument on a malformed
  /// directive (message names the line).
  static IfcPolicy parse(const std::string& text);
  /// Loads and parses a policy file; throws std::invalid_argument when the
  /// file cannot be read or parsed.
  static IfcPolicy parseFile(const std::string& path);

  /// Checks every referenced field exists in the program's type environment
  /// and every declassified table is declared; throws std::invalid_argument
  /// naming the first offender. Call once after parse, before building an
  /// IfcEngine.
  void validate(const p4::CheckedProgram& checked) const;

  /// Labels carried by a source field (empty set when unlabeled).
  std::set<std::string> labelsOf(const std::string& field) const;
  /// Sorted label names with at least one source field.
  std::vector<std::string> labelNames() const;
  /// Declassifying tables for one label, sorted.
  std::vector<std::string> declassifiersFor(const std::string& label) const;

  /// Normalized text rendering (sorted directives) — parse(render()) is a
  /// fixpoint, used by tests and the controller journal.
  std::string render() const;

  /// label -> source fields carrying it.
  std::map<std::string, std::set<std::string>> labels;
  /// Sink policies in file order (duplicate fields rejected at parse).
  std::vector<SinkPolicy> sinks;
  std::vector<Declassify> declassify;
};

}  // namespace flay::ifc

#endif  // FLAY_IFC_POLICY_H
