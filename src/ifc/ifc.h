#ifndef FLAY_IFC_IFC_H
#define FLAY_IFC_IFC_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "expr/arena.h"
#include "expr/substitute.h"
#include "flay/engine.h"
#include "ifc/policy.h"

namespace flay::ifc {

/// Verdict for one (label -> sink) flow.
enum class FlowStatus : uint8_t {
  kSecure,   ///< proved: no label-carrying input can change the observation
  kLeak,     ///< an input pair exists that changes the observation
  kUnknown,  ///< probe unsettled (budget/DAG limit) — treated as a leak
};

const char* toString(FlowStatus s);

struct FlowVerdict {
  std::string label;
  std::string sink;  ///< canonical sink field
  FlowStatus status = FlowStatus::kSecure;
  /// Labeled source fields structurally reachable in the specialized
  /// observation (sorted). Empty = the taint pass already proved kSecure.
  std::vector<std::string> sources;
  /// Declassifying tables whose annotations applied to this flow (sorted).
  std::vector<std::string> declassifiers;

  bool isViolation() const { return status != FlowStatus::kSecure; }
};

/// How the last recheck() was served — bookkeeping only; never part of the
/// rendered report, because cache-hit counts legitimately vary across
/// jobs/cache/incremental settings while the verdicts may not.
struct IfcStats {
  size_t flows = 0;      ///< (label, sink) pairs in the policy
  size_t reused = 0;     ///< served by the per-flow memo, no query issued
  size_t queries = 0;    ///< executability queries sent to the check engine
  size_t cacheHits = 0;  ///< of those, answered by the verdict cache
  size_t timeouts = 0;   ///< probes that exhausted their budget
};

/// One IFC pass over the current control-plane state.
struct IfcReport {
  /// Sorted by (sink, label) — the deterministic-output contract the
  /// jobs x cache x incremental equivalence matrix diffs.
  std::vector<FlowVerdict> flows;
  IfcStats stats;

  size_t violations() const;
  /// Deterministic text form (stats excluded): one line per flow plus a
  /// violation count. Byte-identical across all engine settings.
  std::string render() const;
};

/// Information-flow engine: renders every potential source -> sink flow of
/// the policy as an executability query on the already-specialized program
/// and keeps the verdicts incrementally re-verified across control-plane
/// updates.
///
/// A flow (label L -> sink k) is checked by self-composition: rename every
/// L-labeled source symbol in the specialized observation of k (final value
/// V plus deliverability O = parser-accept && egress != drop) and ask the
/// semantics-check engine whether
///
///     H  &&  (O xor O'  ||  (O && O' && V != V'))
///
/// is satisfiable, where primes are the renamed copies and H conjoins, for
/// every `declassify T L` annotation, agreement on T's installed match
/// outcome (hit condition and action selector). UNSAT proves
/// noninterference modulo the declassified release — kSecure. The query
/// rides the constant-verdict hot path: smt::ProbeSession warm sessions,
/// the scope-invalidated VerdictCache (under "ifc.<sink>" scope tags), and
/// CheckEngine parallel prefetch.
///
/// Incrementality: per sink the engine tracks the control-plane placeholder
/// symbols its observation depends on; a recheck() compares their resolved
/// assignments (O(1) ExprRef equality each) and rebuilds queries only for
/// sinks an update actually touched — everything else reuses the memoized
/// verdict without rendering, hashing, or probing anything.
///
/// Attach to the owning service (service.attachAnalysis(engine)) to get a
/// recheck after every analyzed update round; lastReport() is then the
/// per-update IfcReport.
class IfcEngine : public flay::UpdateAnalysis {
 public:
  /// Validates `policy` against the service's program (throws
  /// std::invalid_argument) and pre-computes the flow skeletons. The
  /// service must outlive the engine.
  IfcEngine(flay::FlayService& service, IfcPolicy policy);

  /// Re-verifies every flow against the service's current control-plane
  /// state and returns (and stores) the report.
  IfcReport recheck();

  /// Rebuilds every query from the current state, bypassing the per-flow
  /// memo — the from-scratch oracle the incremental path is cross-checked
  /// against. The verdict cache still serves repeated renderings (verdicts
  /// are pure facts); what this discards is the incremental bookkeeping.
  IfcReport recheckFromScratch();

  /// flay::UpdateAnalysis: recheck on every analyzed update round.
  void onUpdateAnalyzed(const flay::UpdateVerdict& verdict) override;

  const IfcPolicy& policy() const { return policy_; }
  /// Report of the most recent recheck() (empty before the first).
  const IfcReport& lastReport() const { return lastReport_; }

 private:
  struct SinkState {
    std::string field;
    expr::ExprRef hermetic;  ///< finalState value (placeholders free)
    /// Control-plane placeholders the observation can depend on (this
    /// sink's value + the shared deliverability deps), deduplicated.
    std::vector<expr::ExprRef> cpSymbols;
    /// resolveSymbol() of each at the last recheck; empty before it.
    std::vector<expr::ExprRef> lastResolved;
    expr::ExprRef specializedValue;  ///< V under the last-seen assignment
    expr::ExprRef specializedObs;    ///< O under the last-seen assignment
    /// Flow indices (into flows_) checked at this sink.
    std::vector<size_t> flowIndices;
  };

  struct FlowState {
    FlowVerdict verdict;
    expr::ExprRef query;  ///< last query expr; null before first build
  };

  /// True when any tracked symbol's resolution changed; refreshes
  /// lastResolved as it compares.
  bool refreshResolved(SinkState& sink);
  /// Specializes `e` under the current assignment of `sink`'s tracked
  /// symbols (memo shared per recheck via `subst`).
  void bindResolved(const SinkState& sink, expr::Substitution& subst);
  /// Builds the self-composition query for one flow against the sink's
  /// current specialized observation. Fills verdict.sources/declassifiers.
  expr::ExprRef buildQuery(const SinkState& sink, FlowState& flow);
  /// Boolean equivalence helper (arena eq() is bit-vector only).
  expr::ExprRef iff(expr::ExprRef a, expr::ExprRef b);
  IfcReport runRecheck(bool fromScratch);

  flay::FlayService& service_;
  IfcPolicy policy_;
  expr::ExprRef parserAccept_;   ///< hermetic
  expr::ExprRef egressHermetic_;  ///< hermetic final sm.egress_spec
  std::vector<SinkState> sinks_;  ///< sorted by field
  std::vector<FlowState> flows_;  ///< sorted by (sink, label)
  /// label -> rename map (source symbol -> primed symbol), built lazily.
  std::map<std::string, std::vector<std::pair<expr::ExprRef, expr::ExprRef>>>
      renames_;
  IfcReport lastReport_;
};

}  // namespace flay::ifc

#endif  // FLAY_IFC_IFC_H
