#ifndef FLAY_RUNTIME_DEVICE_CONFIG_H
#define FLAY_RUNTIME_DEVICE_CONFIG_H

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "p4/typecheck.h"
#include "runtime/table_state.h"

namespace flay::runtime {

/// A parser value set's runtime contents.
class ValueSetState {
 public:
  ValueSetState(std::string name, uint32_t width, uint32_t size)
      : name_(std::move(name)), width_(width), size_(size) {}

  void insert(BitVec value, BitVec mask);
  void insert(BitVec value);
  void remove(const BitVec& value, const BitVec& mask);
  void clear() { members_.clear(); }

  bool matches(const BitVec& v) const;
  bool empty() const { return members_.empty(); }
  size_t size() const { return members_.size(); }
  uint32_t width() const { return width_; }
  const std::vector<std::pair<BitVec, BitVec>>& members() const {
    return members_;
  }

 private:
  std::string name_;
  uint32_t width_;
  uint32_t size_;
  std::vector<std::pair<BitVec, BitVec>> members_;  // value, mask
};

/// An action profile's member list (shared action bindings).
class ActionProfileState {
 public:
  struct Member {
    uint32_t memberId;
    std::string actionName;
    std::vector<BitVec> args;
  };

  explicit ActionProfileState(uint32_t size) : size_(size) {}

  void addMember(Member m);
  void removeMember(uint32_t memberId);
  bool empty() const { return members_.empty(); }
  const std::vector<Member>& members() const { return members_; }
  const Member* findMember(uint32_t memberId) const;

 private:
  uint32_t size_;
  std::vector<Member> members_;
};

/// One control-plane update, the unit Flay's incremental analysis consumes.
struct Update {
  enum class Kind {
    kInsert,
    kModify,
    kDelete,
    kSetDefaultAction,
    kValueSetInsert,
    kValueSetDelete,
    kProfileAdd,
    kProfileRemove,
  };
  Kind kind = Kind::kInsert;
  /// Qualified object name: "Ingress.fwd" (table), "MyParser.tpids"
  /// (value set), "Ingress.prof" (action profile).
  std::string target;
  TableEntry entry;                      // insert/modify/delete(by id)
  std::string actionName;                // set-default
  std::vector<BitVec> actionArgs;        // set-default
  BitVec value, mask;                    // value-set ops
  ActionProfileState::Member member;     // profile ops

  static Update insert(std::string table, TableEntry e);
  static Update remove(std::string table, uint64_t id);
  static Update modify(std::string table, TableEntry e);
  static Update setDefault(std::string table, std::string action,
                           std::vector<BitVec> args);
  static Update valueSetInsert(std::string vs, BitVec value, BitVec mask);

  /// One-line human-readable rendering ("insert Ingress.fwd [..] -> act(..)"),
  /// used by the oracle's divergence reports and as the wire format of the
  /// controller's write-ahead journal.
  std::string toString() const;

  /// Parses the exact toString() rendering back into an Update. The text
  /// carries no bit widths, so parsing is schema-directed: `checked` supplies
  /// key widths, match kinds, and action-parameter widths (the same way
  /// P4Runtime messages are only decodable against a pipeline's P4Info).
  /// Round-trip law: fromString(p, u.toString()).toString() == u.toString()
  /// for every update well-formed against `p` — the property crash recovery
  /// replays depend on. Throws std::invalid_argument on malformed text or
  /// unknown objects/actions.
  static Update fromString(const p4::CheckedProgram& checked,
                           std::string_view text);
};

/// The full control-plane configuration of one device/program: every table,
/// value set, and action profile keyed by qualified name. This is what the
/// controller mutates and what Flay specializes against.
class DeviceConfig {
 public:
  /// Builds empty state for every configurable object in the program.
  /// `checked` must outlive this config.
  explicit DeviceConfig(const p4::CheckedProgram& checked);

  TableState& table(const std::string& qualifiedName);
  const TableState& table(const std::string& qualifiedName) const;
  ValueSetState& valueSet(const std::string& qualifiedName);
  const ValueSetState& valueSet(const std::string& qualifiedName) const;
  ActionProfileState& actionProfile(const std::string& qualifiedName);
  const ActionProfileState& actionProfile(
      const std::string& qualifiedName) const;

  bool hasTable(const std::string& qualifiedName) const {
    return tables_.count(qualifiedName) != 0;
  }
  bool hasValueSet(const std::string& qualifiedName) const {
    return valueSets_.count(qualifiedName) != 0;
  }
  bool hasActionProfile(const std::string& qualifiedName) const {
    return profiles_.count(qualifiedName) != 0;
  }

  /// Deterministic iteration (map is ordered).
  const std::map<std::string, TableState>& tables() const { return tables_; }
  const std::map<std::string, ValueSetState>& valueSets() const {
    return valueSets_;
  }
  const std::map<std::string, ActionProfileState>& actionProfiles() const {
    return profiles_;
  }

  /// Applies one update; returns the qualified name of the touched object.
  /// Throws std::invalid_argument on malformed updates.
  std::string apply(const Update& update);

  /// Pre-sizes a table's entry storage and indexes for `total` entries, so a
  /// bulk load pays no mid-stream reallocation or rehash. Capped at the
  /// table's declared capacity; throws if the table does not exist.
  void reserveTable(const std::string& qualifiedName, size_t total);

  const p4::CheckedProgram& checkedProgram() const { return *checked_; }

 private:
  void applyChecked(const Update& update);

  const p4::CheckedProgram* checked_;
  std::map<std::string, TableState> tables_;
  std::map<std::string, ValueSetState> valueSets_;
  std::map<std::string, ActionProfileState> profiles_;
};

}  // namespace flay::runtime

#endif  // FLAY_RUNTIME_DEVICE_CONFIG_H
