#ifndef FLAY_RUNTIME_ENTRY_H
#define FLAY_RUNTIME_ENTRY_H

#include <cstdint>
#include <string>
#include <vector>

#include "p4/ast.h"
#include "support/bitvec.h"

namespace flay::runtime {

/// A match criterion for one key field of a table entry. All three P4-lite
/// match kinds normalize to a value/mask pair; lpm additionally tracks the
/// prefix length for longest-prefix tie-breaking.
struct FieldMatch {
  p4::MatchKind kind = p4::MatchKind::kExact;
  BitVec value;
  BitVec mask;  // exact: all ones; lpm: prefix mask; ternary: arbitrary
  uint32_t prefixLen = 0;

  static FieldMatch exact(BitVec v);
  static FieldMatch ternary(BitVec v, BitVec m);
  static FieldMatch lpm(BitVec v, uint32_t prefixLen);

  /// True if `key` falls inside this criterion.
  bool matches(const BitVec& key) const;
  /// True if the mask is all zeroes (matches everything).
  bool isWildcard() const { return mask.isZero(); }
  /// True if the mask is all ones (an exact value, whatever the kind).
  bool isExactValued() const { return mask.isAllOnes(); }
  /// True if every key matched by `other` is also matched by this.
  bool covers(const FieldMatch& other) const;

  bool operator==(const FieldMatch& other) const {
    // Two criteria are equal if they match the same key set.
    return mask == other.mask &&
           value.bitAnd(mask) == other.value.bitAnd(other.mask);
  }

  std::string toString() const;
};

/// One control-plane table entry.
struct TableEntry {
  std::vector<FieldMatch> matches;
  std::string actionName;
  std::vector<BitVec> actionArgs;
  /// Larger wins. Only meaningful for tables with ternary keys.
  int32_t priority = 0;
  /// Assigned by TableState on insert.
  uint64_t id = 0;

  /// True if every key matched by `other` is matched by this entry.
  bool covers(const TableEntry& other) const;
  bool sameMatchSet(const TableEntry& other) const;
  bool matchesKey(const std::vector<BitVec>& key) const;

  std::string toString() const;
};

}  // namespace flay::runtime

#endif  // FLAY_RUNTIME_ENTRY_H
