#include "runtime/device_config.h"

#include <stdexcept>
#include <tuple>

#include "obs/obs.h"

namespace flay::runtime {

// ---------------------------------------------------------------------------
// ValueSetState
// ---------------------------------------------------------------------------

void ValueSetState::insert(BitVec value, BitVec mask) {
  if (value.width() != width_ || mask.width() != width_) {
    throw std::invalid_argument("value_set '" + name_ + "' width mismatch");
  }
  if (members_.size() >= size_) {
    throw std::invalid_argument("value_set '" + name_ + "' is full");
  }
  for (const auto& [v, m] : members_) {
    if (v == value && m == mask) {
      throw std::invalid_argument("value_set '" + name_ + "' duplicate");
    }
  }
  members_.emplace_back(std::move(value), std::move(mask));
}

void ValueSetState::insert(BitVec value) {
  BitVec mask = BitVec::allOnes(value.width());
  insert(std::move(value), std::move(mask));
}

void ValueSetState::remove(const BitVec& value, const BitVec& mask) {
  for (auto it = members_.begin(); it != members_.end(); ++it) {
    if (it->first == value && it->second == mask) {
      members_.erase(it);
      return;
    }
  }
  throw std::invalid_argument("value_set '" + name_ + "' member not found");
}

bool ValueSetState::matches(const BitVec& v) const {
  for (const auto& [value, mask] : members_) {
    if (v.bitAnd(mask) == value.bitAnd(mask)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// ActionProfileState
// ---------------------------------------------------------------------------

void ActionProfileState::addMember(Member m) {
  if (members_.size() >= size_) {
    throw std::invalid_argument("action profile is full");
  }
  if (findMember(m.memberId) != nullptr) {
    throw std::invalid_argument("duplicate action profile member id");
  }
  members_.push_back(std::move(m));
}

void ActionProfileState::removeMember(uint32_t memberId) {
  for (auto it = members_.begin(); it != members_.end(); ++it) {
    if (it->memberId == memberId) {
      members_.erase(it);
      return;
    }
  }
  throw std::invalid_argument("action profile member not found");
}

const ActionProfileState::Member* ActionProfileState::findMember(
    uint32_t memberId) const {
  for (const auto& m : members_) {
    if (m.memberId == memberId) return &m;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Update factories
// ---------------------------------------------------------------------------

Update Update::insert(std::string table, TableEntry e) {
  Update u;
  u.kind = Kind::kInsert;
  u.target = std::move(table);
  u.entry = std::move(e);
  return u;
}

Update Update::remove(std::string table, uint64_t id) {
  Update u;
  u.kind = Kind::kDelete;
  u.target = std::move(table);
  u.entry.id = id;
  return u;
}

Update Update::modify(std::string table, TableEntry e) {
  Update u;
  u.kind = Kind::kModify;
  u.target = std::move(table);
  u.entry = std::move(e);
  return u;
}

Update Update::setDefault(std::string table, std::string action,
                          std::vector<BitVec> args) {
  Update u;
  u.kind = Kind::kSetDefaultAction;
  u.target = std::move(table);
  u.actionName = std::move(action);
  u.actionArgs = std::move(args);
  return u;
}

Update Update::valueSetInsert(std::string vs, BitVec value, BitVec mask) {
  Update u;
  u.kind = Kind::kValueSetInsert;
  u.target = std::move(vs);
  u.value = std::move(value);
  u.mask = std::move(mask);
  return u;
}

std::string Update::toString() const {
  switch (kind) {
    case Kind::kInsert:
      return "insert " + target + " " + entry.toString();
    case Kind::kModify:
      return "modify " + target + " id=" + std::to_string(entry.id) + " " +
             entry.toString();
    case Kind::kDelete:
      return "delete " + target + " id=" + std::to_string(entry.id);
    case Kind::kSetDefaultAction: {
      std::string s = "set-default " + target + " " + actionName + "(";
      for (size_t i = 0; i < actionArgs.size(); ++i) {
        if (i > 0) s += ", ";
        s += actionArgs[i].toHexString();
      }
      return s + ")";
    }
    case Kind::kValueSetInsert:
      return "vs-insert " + target + " " + value.toHexString() + " &&& " +
             mask.toHexString();
    case Kind::kValueSetDelete:
      return "vs-delete " + target + " " + value.toHexString() + " &&& " +
             mask.toHexString();
    case Kind::kProfileAdd: {
      std::string s = "profile-add " + target + " member=" +
                      std::to_string(member.memberId) + " " +
                      member.actionName + "(";
      for (size_t i = 0; i < member.args.size(); ++i) {
        if (i > 0) s += ", ";
        s += member.args[i].toHexString();
      }
      return s + ")";
    }
    case Kind::kProfileRemove:
      return "profile-remove " + target + " member=" +
             std::to_string(member.memberId);
  }
  return "unknown-update";
}

// ---------------------------------------------------------------------------
// Update::fromString — schema-directed inverse of toString
// ---------------------------------------------------------------------------

namespace {

[[noreturn]] void badUpdate(std::string_view text, const std::string& why) {
  throw std::invalid_argument("cannot parse update '" + std::string(text) +
                              "': " + why);
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && s.front() == ' ') s.remove_prefix(1);
  while (!s.empty() && s.back() == ' ') s.remove_suffix(1);
  return s;
}

/// Consumes and returns the next space-delimited word.
std::string_view takeWord(std::string_view& s) {
  s = trim(s);
  size_t sp = s.find(' ');
  std::string_view word = sp == std::string_view::npos ? s : s.substr(0, sp);
  s.remove_prefix(sp == std::string_view::npos ? s.size() : sp + 1);
  return word;
}

/// Splits "a, b, c" on top-level commas (the rendered lists never nest).
std::vector<std::string_view> splitList(std::string_view s) {
  std::vector<std::string_view> out;
  s = trim(s);
  if (s.empty()) return out;
  size_t pos = 0;
  while (pos <= s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string_view::npos) comma = s.size();
    out.push_back(trim(s.substr(pos, comma - pos)));
    pos = comma + 1;
    if (comma == s.size()) break;
  }
  return out;
}

uint64_t parseUint(std::string_view orig, std::string_view digits) {
  if (digits.empty()) badUpdate(orig, "expected a number");
  uint64_t v = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') {
      badUpdate(orig, "bad number '" + std::string(digits) + "'");
    }
    uint64_t d = static_cast<uint64_t>(c - '0');
    // A value that wraps uint64 must be rejected, not silently reduced
    // mod 2^64 — wire input is adversarial.
    if (v > (UINT64_MAX - d) / 10) {
      badUpdate(orig, "number '" + std::string(digits) + "' overflows");
    }
    v = v * 10 + d;
  }
  return v;
}

struct TableSchema {
  const p4::ControlDecl* control = nullptr;
  const p4::TableDecl* decl = nullptr;
};

TableSchema findTable(const p4::CheckedProgram& checked,
                      std::string_view target, std::string_view orig) {
  size_t dot = target.find('.');
  if (dot == std::string_view::npos) badUpdate(orig, "unqualified target");
  std::string control(target.substr(0, dot));
  std::string table(target.substr(dot + 1));
  for (const auto& c : checked.program.controls) {
    if (c.name != control) continue;
    if (const p4::TableDecl* t = c.findTable(table)) return {&c, t};
  }
  badUpdate(orig, "unknown table '" + std::string(target) + "'");
}

const p4::ValueSetDecl* findValueSet(const p4::CheckedProgram& checked,
                                     std::string_view target,
                                     std::string_view orig) {
  size_t dot = target.find('.');
  if (dot == std::string_view::npos) badUpdate(orig, "unqualified target");
  std::string parser(target.substr(0, dot));
  std::string vs(target.substr(dot + 1));
  for (const auto& p : checked.program.parsers) {
    if (p.name != parser) continue;
    for (const auto& v : p.valueSets) {
      if (v.name == vs) return &v;
    }
  }
  badUpdate(orig, "unknown value_set '" + std::string(target) + "'");
}

const p4::ControlDecl* findControlByPrefix(const p4::CheckedProgram& checked,
                                           std::string_view target,
                                           std::string_view orig) {
  size_t dot = target.find('.');
  if (dot == std::string_view::npos) badUpdate(orig, "unqualified target");
  std::string control(target.substr(0, dot));
  for (const auto& c : checked.program.controls) {
    if (c.name == control) return &c;
  }
  badUpdate(orig, "unknown control '" + std::string(control) + "'");
}

/// Parses "act(0x01, 0x02)" against the control's action declaration; the
/// builtin noop/NoAction take no arguments.
void parseActionCall(const p4::ControlDecl& control, std::string_view call,
                     std::string_view orig, std::string* actionName,
                     std::vector<BitVec>* args) {
  call = trim(call);
  size_t open = call.find('(');
  if (open == std::string_view::npos || call.back() != ')') {
    badUpdate(orig, "expected action(args)");
  }
  *actionName = std::string(trim(call.substr(0, open)));
  std::vector<std::string_view> argText =
      splitList(call.substr(open + 1, call.size() - open - 2));
  const p4::ActionDecl* decl = control.findAction(*actionName);
  size_t expected = decl != nullptr ? decl->params.size() : 0;
  if (argText.size() != expected) {
    badUpdate(orig, "action '" + *actionName + "' expects " +
                        std::to_string(expected) + " arguments, got " +
                        std::to_string(argText.size()));
  }
  args->clear();
  for (size_t i = 0; i < argText.size(); ++i) {
    args->push_back(BitVec::parse(decl->params[i].width, argText[i]));
  }
}

/// Parses "[m0, m1, ...] -> act(args)[ prio=P]" against the table schema.
TableEntry parseEntryBody(const TableSchema& schema, std::string_view body,
                          std::string_view orig) {
  body = trim(body);
  if (body.empty() || body.front() != '[') badUpdate(orig, "expected '['");
  size_t close = body.find(']');
  if (close == std::string_view::npos) badUpdate(orig, "unterminated '['");
  std::vector<std::string_view> matchText =
      splitList(body.substr(1, close - 1));
  if (matchText.size() != schema.decl->keys.size()) {
    badUpdate(orig, "entry has " + std::to_string(matchText.size()) +
                        " matches, table has " +
                        std::to_string(schema.decl->keys.size()) + " keys");
  }
  TableEntry entry;
  for (size_t i = 0; i < matchText.size(); ++i) {
    const p4::KeyElement& key = schema.decl->keys[i];
    uint32_t width = key.expr->width;
    std::string_view m = matchText[i];
    switch (key.matchKind) {
      case p4::MatchKind::kExact:
        entry.matches.push_back(FieldMatch::exact(BitVec::parse(width, m)));
        break;
      case p4::MatchKind::kTernary: {
        size_t amp = m.find(" &&& ");
        if (amp == std::string_view::npos) {
          badUpdate(orig, "ternary key needs 'value &&& mask'");
        }
        entry.matches.push_back(
            FieldMatch::ternary(BitVec::parse(width, trim(m.substr(0, amp))),
                                BitVec::parse(width, trim(m.substr(amp + 5)))));
        break;
      }
      case p4::MatchKind::kLpm: {
        size_t slash = m.rfind('/');
        if (slash == std::string_view::npos) {
          badUpdate(orig, "lpm key needs 'value/prefixLen'");
        }
        uint64_t len = parseUint(orig, m.substr(slash + 1));
        // FieldMatch::lpm rejects prefixLen > width, but only after the
        // u32 cast — catch a 2^32-aliasing length before it truncates.
        if (len > width) {
          badUpdate(orig, "lpm prefix length " + std::to_string(len) +
                              " exceeds key width");
        }
        entry.matches.push_back(
            FieldMatch::lpm(BitVec::parse(width, trim(m.substr(0, slash))),
                            static_cast<uint32_t>(len)));
        break;
      }
    }
  }
  std::string_view rest = trim(body.substr(close + 1));
  if (rest.substr(0, 2) != "->") badUpdate(orig, "expected '->'");
  rest = trim(rest.substr(2));
  // Optional trailing " prio=P" (P may be negative).
  size_t prio = rest.rfind(" prio=");
  if (prio != std::string_view::npos && rest.find(')', prio) == std::string_view::npos) {
    std::string_view p = rest.substr(prio + 6);
    bool negative = !p.empty() && p.front() == '-';
    if (negative) p.remove_prefix(1);
    uint64_t v = parseUint(orig, p);
    // priority is int32 on the wire and in the classifier; a magnitude that
    // does not fit must fail here, not wrap into a different priority.
    uint64_t limit = negative ? 2147483648ull : 2147483647ull;
    if (v > limit) {
      badUpdate(orig, "priority " + std::string(negative ? "-" : "") +
                          std::string(p) + " out of int32 range");
    }
    entry.priority =
        negative ? static_cast<int32_t>(-static_cast<int64_t>(v))
                 : static_cast<int32_t>(v);
    rest = trim(rest.substr(0, prio));
  }
  parseActionCall(*schema.control, rest, orig, &entry.actionName,
                  &entry.actionArgs);
  return entry;
}

/// Parses "key=N" returning N.
uint64_t parseKeyedUint(std::string_view& s, std::string_view key,
                        std::string_view orig) {
  std::string_view word = takeWord(s);
  if (word.substr(0, key.size()) != key || word.size() <= key.size() ||
      word[key.size()] != '=') {
    badUpdate(orig, "expected '" + std::string(key) + "=N'");
  }
  return parseUint(orig, word.substr(key.size() + 1));
}

std::pair<BitVec, BitVec> parseValueMask(uint32_t width, std::string_view s,
                                         std::string_view orig) {
  size_t amp = s.find(" &&& ");
  if (amp == std::string_view::npos) {
    badUpdate(orig, "expected 'value &&& mask'");
  }
  return {BitVec::parse(width, trim(s.substr(0, amp))),
          BitVec::parse(width, trim(s.substr(amp + 5)))};
}

}  // namespace

Update Update::fromString(const p4::CheckedProgram& checked,
                          std::string_view text) {
  std::string_view orig = text;
  std::string_view s = trim(text);
  std::string_view kind = takeWord(s);
  std::string target(takeWord(s));
  if (target.empty()) badUpdate(orig, "missing target");

  if (kind == "insert" || kind == "modify") {
    TableSchema schema = findTable(checked, target, orig);
    Update u;
    u.kind = kind == "insert" ? Kind::kInsert : Kind::kModify;
    u.target = std::move(target);
    uint64_t id = 0;
    if (u.kind == Kind::kModify) id = parseKeyedUint(s, "id", orig);
    u.entry = parseEntryBody(schema, s, orig);
    u.entry.id = id;
    return u;
  }
  if (kind == "delete") {
    Update u;
    u.kind = Kind::kDelete;
    // Existence check only: ids need no schema, but an unknown table should
    // fail here, not at replay time.
    findTable(checked, target, orig);
    u.target = std::move(target);
    u.entry.id = parseKeyedUint(s, "id", orig);
    if (!trim(s).empty()) {
      badUpdate(orig, "trailing garbage after id");
    }
    return u;
  }
  if (kind == "set-default") {
    TableSchema schema = findTable(checked, target, orig);
    Update u;
    u.kind = Kind::kSetDefaultAction;
    u.target = std::move(target);
    parseActionCall(*schema.control, s, orig, &u.actionName, &u.actionArgs);
    return u;
  }
  if (kind == "vs-insert" || kind == "vs-delete") {
    const p4::ValueSetDecl* vs = findValueSet(checked, target, orig);
    Update u;
    u.kind = kind == "vs-insert" ? Kind::kValueSetInsert : Kind::kValueSetDelete;
    u.target = std::move(target);
    std::tie(u.value, u.mask) = parseValueMask(vs->width, trim(s), orig);
    return u;
  }
  if (kind == "profile-add") {
    const p4::ControlDecl* control = findControlByPrefix(checked, target, orig);
    Update u;
    u.kind = Kind::kProfileAdd;
    u.target = std::move(target);
    uint64_t member = parseKeyedUint(s, "member", orig);
    if (member > UINT32_MAX) badUpdate(orig, "member id out of range");
    u.member.memberId = static_cast<uint32_t>(member);
    parseActionCall(*control, s, orig, &u.member.actionName, &u.member.args);
    return u;
  }
  if (kind == "profile-remove") {
    Update u;
    u.kind = Kind::kProfileRemove;
    findControlByPrefix(checked, target, orig);
    u.target = std::move(target);
    uint64_t member = parseKeyedUint(s, "member", orig);
    if (member > UINT32_MAX) badUpdate(orig, "member id out of range");
    u.member.memberId = static_cast<uint32_t>(member);
    if (!trim(s).empty()) {
      badUpdate(orig, "trailing garbage after member id");
    }
    return u;
  }
  badUpdate(orig, "unknown update kind '" + std::string(kind) + "'");
}

// ---------------------------------------------------------------------------
// DeviceConfig
// ---------------------------------------------------------------------------

DeviceConfig::DeviceConfig(const p4::CheckedProgram& checked)
    : checked_(&checked) {
  for (const auto& control : checked.program.controls) {
    for (const auto& table : control.tables) {
      std::string qualified = control.name + "." + table.name;
      tables_.emplace(qualified, TableState(control, table));
    }
    for (const auto& profile : control.actionProfiles) {
      profiles_.emplace(control.name + "." + profile.name,
                        ActionProfileState(profile.size));
    }
  }
  for (const auto& parser : checked.program.parsers) {
    for (const auto& vs : parser.valueSets) {
      std::string qualified = parser.name + "." + vs.name;
      valueSets_.emplace(qualified,
                         ValueSetState(qualified, vs.width, vs.size));
    }
  }
}

TableState& DeviceConfig::table(const std::string& qualifiedName) {
  auto it = tables_.find(qualifiedName);
  if (it == tables_.end()) {
    throw std::invalid_argument("unknown table '" + qualifiedName + "'");
  }
  return it->second;
}

const TableState& DeviceConfig::table(const std::string& qualifiedName) const {
  return const_cast<DeviceConfig*>(this)->table(qualifiedName);
}

ValueSetState& DeviceConfig::valueSet(const std::string& qualifiedName) {
  auto it = valueSets_.find(qualifiedName);
  if (it == valueSets_.end()) {
    throw std::invalid_argument("unknown value_set '" + qualifiedName + "'");
  }
  return it->second;
}

const ValueSetState& DeviceConfig::valueSet(
    const std::string& qualifiedName) const {
  return const_cast<DeviceConfig*>(this)->valueSet(qualifiedName);
}

ActionProfileState& DeviceConfig::actionProfile(
    const std::string& qualifiedName) {
  auto it = profiles_.find(qualifiedName);
  if (it == profiles_.end()) {
    throw std::invalid_argument("unknown action profile '" + qualifiedName +
                                "'");
  }
  return it->second;
}

const ActionProfileState& DeviceConfig::actionProfile(
    const std::string& qualifiedName) const {
  return const_cast<DeviceConfig*>(this)->actionProfile(qualifiedName);
}

namespace {

/// Per-kind update counters. A rejected (throwing) update is counted under
/// runtime.rejected_updates instead of its kind — only installed state is
/// interesting for the update-mix telemetry.
obs::Counter& updateKindCounter(Update::Kind kind) {
  obs::Registry& reg = obs::Registry::global();
  switch (kind) {
    case Update::Kind::kInsert:
      return reg.counter("runtime.inserts");
    case Update::Kind::kModify:
      return reg.counter("runtime.modifies");
    case Update::Kind::kDelete:
      return reg.counter("runtime.deletes");
    case Update::Kind::kSetDefaultAction:
      return reg.counter("runtime.default_action_sets");
    case Update::Kind::kValueSetInsert:
      return reg.counter("runtime.value_set_inserts");
    case Update::Kind::kValueSetDelete:
      return reg.counter("runtime.value_set_deletes");
    case Update::Kind::kProfileAdd:
      return reg.counter("runtime.profile_adds");
    case Update::Kind::kProfileRemove:
      return reg.counter("runtime.profile_removes");
  }
  return reg.counter("runtime.unknown_updates");
}

}  // namespace

std::string DeviceConfig::apply(const Update& update) {
  try {
    applyChecked(update);
  } catch (...) {
    obs::Registry::global().counter("runtime.rejected_updates").add(1);
    throw;
  }
  updateKindCounter(update.kind).add(1);
  return update.target;
}

void DeviceConfig::reserveTable(const std::string& qualifiedName,
                                size_t total) {
  TableState& t = table(qualifiedName);
  t.reserve(std::min<size_t>(total, t.decl().size));
}

void DeviceConfig::applyChecked(const Update& update) {
  switch (update.kind) {
    case Update::Kind::kInsert:
      table(update.target).insert(update.entry);
      break;
    case Update::Kind::kModify:
      table(update.target).modify(update.entry);
      break;
    case Update::Kind::kDelete:
      table(update.target).remove(update.entry.id);
      break;
    case Update::Kind::kSetDefaultAction:
      table(update.target)
          .setDefaultAction(update.actionName, update.actionArgs);
      break;
    case Update::Kind::kValueSetInsert:
      valueSet(update.target).insert(update.value, update.mask);
      break;
    case Update::Kind::kValueSetDelete:
      valueSet(update.target).remove(update.value, update.mask);
      break;
    case Update::Kind::kProfileAdd:
      actionProfile(update.target).addMember(update.member);
      break;
    case Update::Kind::kProfileRemove:
      actionProfile(update.target).removeMember(update.member.memberId);
      break;
  }
}

}  // namespace flay::runtime
