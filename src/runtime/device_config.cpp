#include "runtime/device_config.h"

#include <stdexcept>

#include "obs/obs.h"

namespace flay::runtime {

// ---------------------------------------------------------------------------
// ValueSetState
// ---------------------------------------------------------------------------

void ValueSetState::insert(BitVec value, BitVec mask) {
  if (value.width() != width_ || mask.width() != width_) {
    throw std::invalid_argument("value_set '" + name_ + "' width mismatch");
  }
  if (members_.size() >= size_) {
    throw std::invalid_argument("value_set '" + name_ + "' is full");
  }
  for (const auto& [v, m] : members_) {
    if (v == value && m == mask) {
      throw std::invalid_argument("value_set '" + name_ + "' duplicate");
    }
  }
  members_.emplace_back(std::move(value), std::move(mask));
}

void ValueSetState::insert(BitVec value) {
  BitVec mask = BitVec::allOnes(value.width());
  insert(std::move(value), std::move(mask));
}

void ValueSetState::remove(const BitVec& value, const BitVec& mask) {
  for (auto it = members_.begin(); it != members_.end(); ++it) {
    if (it->first == value && it->second == mask) {
      members_.erase(it);
      return;
    }
  }
  throw std::invalid_argument("value_set '" + name_ + "' member not found");
}

bool ValueSetState::matches(const BitVec& v) const {
  for (const auto& [value, mask] : members_) {
    if (v.bitAnd(mask) == value.bitAnd(mask)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// ActionProfileState
// ---------------------------------------------------------------------------

void ActionProfileState::addMember(Member m) {
  if (members_.size() >= size_) {
    throw std::invalid_argument("action profile is full");
  }
  if (findMember(m.memberId) != nullptr) {
    throw std::invalid_argument("duplicate action profile member id");
  }
  members_.push_back(std::move(m));
}

void ActionProfileState::removeMember(uint32_t memberId) {
  for (auto it = members_.begin(); it != members_.end(); ++it) {
    if (it->memberId == memberId) {
      members_.erase(it);
      return;
    }
  }
  throw std::invalid_argument("action profile member not found");
}

const ActionProfileState::Member* ActionProfileState::findMember(
    uint32_t memberId) const {
  for (const auto& m : members_) {
    if (m.memberId == memberId) return &m;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Update factories
// ---------------------------------------------------------------------------

Update Update::insert(std::string table, TableEntry e) {
  Update u;
  u.kind = Kind::kInsert;
  u.target = std::move(table);
  u.entry = std::move(e);
  return u;
}

Update Update::remove(std::string table, uint64_t id) {
  Update u;
  u.kind = Kind::kDelete;
  u.target = std::move(table);
  u.entry.id = id;
  return u;
}

Update Update::modify(std::string table, TableEntry e) {
  Update u;
  u.kind = Kind::kModify;
  u.target = std::move(table);
  u.entry = std::move(e);
  return u;
}

Update Update::setDefault(std::string table, std::string action,
                          std::vector<BitVec> args) {
  Update u;
  u.kind = Kind::kSetDefaultAction;
  u.target = std::move(table);
  u.actionName = std::move(action);
  u.actionArgs = std::move(args);
  return u;
}

Update Update::valueSetInsert(std::string vs, BitVec value, BitVec mask) {
  Update u;
  u.kind = Kind::kValueSetInsert;
  u.target = std::move(vs);
  u.value = std::move(value);
  u.mask = std::move(mask);
  return u;
}

std::string Update::toString() const {
  switch (kind) {
    case Kind::kInsert:
      return "insert " + target + " " + entry.toString();
    case Kind::kModify:
      return "modify " + target + " id=" + std::to_string(entry.id) + " " +
             entry.toString();
    case Kind::kDelete:
      return "delete " + target + " id=" + std::to_string(entry.id);
    case Kind::kSetDefaultAction: {
      std::string s = "set-default " + target + " " + actionName + "(";
      for (size_t i = 0; i < actionArgs.size(); ++i) {
        if (i > 0) s += ", ";
        s += actionArgs[i].toHexString();
      }
      return s + ")";
    }
    case Kind::kValueSetInsert:
      return "vs-insert " + target + " " + value.toHexString() + " &&& " +
             mask.toHexString();
    case Kind::kValueSetDelete:
      return "vs-delete " + target + " " + value.toHexString() + " &&& " +
             mask.toHexString();
    case Kind::kProfileAdd:
      return "profile-add " + target + " member=" +
             std::to_string(member.memberId) + " " + member.actionName;
    case Kind::kProfileRemove:
      return "profile-remove " + target + " member=" +
             std::to_string(member.memberId);
  }
  return "unknown-update";
}

// ---------------------------------------------------------------------------
// DeviceConfig
// ---------------------------------------------------------------------------

DeviceConfig::DeviceConfig(const p4::CheckedProgram& checked)
    : checked_(&checked) {
  for (const auto& control : checked.program.controls) {
    for (const auto& table : control.tables) {
      std::string qualified = control.name + "." + table.name;
      tables_.emplace(qualified, TableState(control, table));
    }
    for (const auto& profile : control.actionProfiles) {
      profiles_.emplace(control.name + "." + profile.name,
                        ActionProfileState(profile.size));
    }
  }
  for (const auto& parser : checked.program.parsers) {
    for (const auto& vs : parser.valueSets) {
      std::string qualified = parser.name + "." + vs.name;
      valueSets_.emplace(qualified,
                         ValueSetState(qualified, vs.width, vs.size));
    }
  }
}

TableState& DeviceConfig::table(const std::string& qualifiedName) {
  auto it = tables_.find(qualifiedName);
  if (it == tables_.end()) {
    throw std::invalid_argument("unknown table '" + qualifiedName + "'");
  }
  return it->second;
}

const TableState& DeviceConfig::table(const std::string& qualifiedName) const {
  return const_cast<DeviceConfig*>(this)->table(qualifiedName);
}

ValueSetState& DeviceConfig::valueSet(const std::string& qualifiedName) {
  auto it = valueSets_.find(qualifiedName);
  if (it == valueSets_.end()) {
    throw std::invalid_argument("unknown value_set '" + qualifiedName + "'");
  }
  return it->second;
}

const ValueSetState& DeviceConfig::valueSet(
    const std::string& qualifiedName) const {
  return const_cast<DeviceConfig*>(this)->valueSet(qualifiedName);
}

ActionProfileState& DeviceConfig::actionProfile(
    const std::string& qualifiedName) {
  auto it = profiles_.find(qualifiedName);
  if (it == profiles_.end()) {
    throw std::invalid_argument("unknown action profile '" + qualifiedName +
                                "'");
  }
  return it->second;
}

const ActionProfileState& DeviceConfig::actionProfile(
    const std::string& qualifiedName) const {
  return const_cast<DeviceConfig*>(this)->actionProfile(qualifiedName);
}

namespace {

/// Per-kind update counters. A rejected (throwing) update is counted under
/// runtime.rejected_updates instead of its kind — only installed state is
/// interesting for the update-mix telemetry.
obs::Counter& updateKindCounter(Update::Kind kind) {
  obs::Registry& reg = obs::Registry::global();
  switch (kind) {
    case Update::Kind::kInsert:
      return reg.counter("runtime.inserts");
    case Update::Kind::kModify:
      return reg.counter("runtime.modifies");
    case Update::Kind::kDelete:
      return reg.counter("runtime.deletes");
    case Update::Kind::kSetDefaultAction:
      return reg.counter("runtime.default_action_sets");
    case Update::Kind::kValueSetInsert:
      return reg.counter("runtime.value_set_inserts");
    case Update::Kind::kValueSetDelete:
      return reg.counter("runtime.value_set_deletes");
    case Update::Kind::kProfileAdd:
      return reg.counter("runtime.profile_adds");
    case Update::Kind::kProfileRemove:
      return reg.counter("runtime.profile_removes");
  }
  return reg.counter("runtime.unknown_updates");
}

}  // namespace

std::string DeviceConfig::apply(const Update& update) {
  try {
    applyChecked(update);
  } catch (...) {
    obs::Registry::global().counter("runtime.rejected_updates").add(1);
    throw;
  }
  updateKindCounter(update.kind).add(1);
  return update.target;
}

void DeviceConfig::applyChecked(const Update& update) {
  switch (update.kind) {
    case Update::Kind::kInsert:
      table(update.target).insert(update.entry);
      break;
    case Update::Kind::kModify:
      table(update.target).modify(update.entry);
      break;
    case Update::Kind::kDelete:
      table(update.target).remove(update.entry.id);
      break;
    case Update::Kind::kSetDefaultAction:
      table(update.target)
          .setDefaultAction(update.actionName, update.actionArgs);
      break;
    case Update::Kind::kValueSetInsert:
      valueSet(update.target).insert(update.value, update.mask);
      break;
    case Update::Kind::kValueSetDelete:
      valueSet(update.target).remove(update.value, update.mask);
      break;
    case Update::Kind::kProfileAdd:
      actionProfile(update.target).addMember(update.member);
      break;
    case Update::Kind::kProfileRemove:
      actionProfile(update.target).removeMember(update.member.memberId);
      break;
  }
}

}  // namespace flay::runtime
