#include "runtime/entry.h"

#include <stdexcept>

namespace flay::runtime {

FieldMatch FieldMatch::exact(BitVec v) {
  FieldMatch m;
  m.kind = p4::MatchKind::kExact;
  m.mask = BitVec::allOnes(v.width());
  m.value = std::move(v);
  m.prefixLen = m.value.width();
  return m;
}

FieldMatch FieldMatch::ternary(BitVec v, BitVec mk) {
  if (v.width() != mk.width()) {
    throw std::invalid_argument("ternary value/mask width mismatch");
  }
  FieldMatch m;
  m.kind = p4::MatchKind::kTernary;
  m.value = std::move(v);
  m.mask = std::move(mk);
  return m;
}

FieldMatch FieldMatch::lpm(BitVec v, uint32_t prefixLen) {
  if (prefixLen > v.width()) {
    throw std::invalid_argument("lpm prefix length exceeds field width");
  }
  FieldMatch m;
  m.kind = p4::MatchKind::kLpm;
  m.prefixLen = prefixLen;
  uint32_t w = v.width();
  m.mask = prefixLen == 0 ? BitVec::zero(w)
                          : BitVec::allOnes(w).shl(w - prefixLen);
  m.value = std::move(v);
  return m;
}

bool FieldMatch::matches(const BitVec& key) const {
  return key.bitAnd(mask) == value.bitAnd(mask);
}

bool FieldMatch::covers(const FieldMatch& other) const {
  // this covers other iff this.mask is a subset of other.mask and the values
  // agree on this.mask: every key in other's region then satisfies this.
  if (mask.bitAnd(other.mask) != mask) return false;
  return value.bitAnd(mask) == other.value.bitAnd(mask);
}

std::string FieldMatch::toString() const {
  switch (kind) {
    case p4::MatchKind::kExact:
      return value.toHexString();
    case p4::MatchKind::kTernary:
      return value.toHexString() + " &&& " + mask.toHexString();
    case p4::MatchKind::kLpm:
      return value.toHexString() + "/" + std::to_string(prefixLen);
  }
  return "<?>";
}

bool TableEntry::covers(const TableEntry& other) const {
  if (matches.size() != other.matches.size()) return false;
  for (size_t i = 0; i < matches.size(); ++i) {
    if (!matches[i].covers(other.matches[i])) return false;
  }
  return true;
}

bool TableEntry::sameMatchSet(const TableEntry& other) const {
  if (matches.size() != other.matches.size()) return false;
  for (size_t i = 0; i < matches.size(); ++i) {
    if (!(matches[i] == other.matches[i])) return false;
  }
  return true;
}

bool TableEntry::matchesKey(const std::vector<BitVec>& key) const {
  if (key.size() != matches.size()) return false;
  for (size_t i = 0; i < key.size(); ++i) {
    if (!matches[i].matches(key[i])) return false;
  }
  return true;
}

std::string TableEntry::toString() const {
  std::string s = "[";
  for (size_t i = 0; i < matches.size(); ++i) {
    if (i > 0) s += ", ";
    s += matches[i].toString();
  }
  s += "] -> " + actionName + "(";
  for (size_t i = 0; i < actionArgs.size(); ++i) {
    if (i > 0) s += ", ";
    s += actionArgs[i].toHexString();
  }
  s += ")";
  if (priority != 0) s += " prio=" + std::to_string(priority);
  return s;
}

}  // namespace flay::runtime
