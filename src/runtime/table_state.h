#ifndef FLAY_RUNTIME_TABLE_STATE_H
#define FLAY_RUNTIME_TABLE_STATE_H

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/entry.h"

namespace flay::runtime {

/// Runtime state of one match-action table: the installed entries plus an
/// optional default-action override. Implements the control-plane semantics
/// the paper's §4.1 assigns to the device specification: inserts are
/// validated against the table schema, duplicates are rejected, and the
/// normalized view omits entries eclipsed by higher-precedence ones.
class TableState {
 public:
  /// `control` and `decl` outlive this object (they belong to the Program).
  TableState(const p4::ControlDecl& control, const p4::TableDecl& decl);

  const p4::TableDecl& decl() const { return *decl_; }
  const p4::ControlDecl& control() const { return *control_; }
  std::string qualifiedName() const {
    return control_->name + "." + decl_->name;
  }

  /// Validates and installs; returns the assigned entry id.
  /// Throws std::invalid_argument on schema violations or duplicates.
  uint64_t insert(TableEntry entry);
  /// Checkpoint-restore insert: installs `entry` keeping its original
  /// (non-zero) id and bumps the id allocator past it, so updates journaled
  /// after the checkpoint replay against the exact same id sequence.
  void restoreEntry(TableEntry entry);
  /// Next id insert() would assign; restored verbatim from checkpoints.
  uint64_t nextId() const { return nextId_; }
  void setNextId(uint64_t id) { nextId_ = id; }
  /// Replaces the entry with `entry.id`; throws if absent.
  void modify(TableEntry entry);
  /// Removes by id; throws if absent.
  void remove(uint64_t id);
  void clear();

  /// Pre-sizes the entry storage and the duplicate/id indexes for `n` total
  /// entries, so a bulk load pays no mid-stream reallocation or rehash.
  void reserve(size_t n);

  /// Overrides the default action; pass the declaration default to reset.
  void setDefaultAction(std::string actionName, std::vector<BitVec> args);
  const std::string& defaultActionName() const { return defaultActionName_; }
  const std::vector<BitVec>& defaultActionArgs() const {
    return defaultActionArgs_;
  }

  const std::vector<TableEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// True if the table has at least one ternary key (priority semantics).
  bool usesPriority() const { return hasTernary_; }

  /// Entries in match precedence order (highest first), with entries whose
  /// match region is fully covered by earlier entries omitted — they can
  /// never win a lookup and therefore don't affect program semantics.
  std::vector<const TableEntry*> normalizedEntries() const;

  /// Data-plane lookup: highest-precedence matching entry, or nullptr
  /// (default action applies).
  const TableEntry* lookup(const std::vector<BitVec>& key) const;

  /// The set of action names that can actually execute given the current
  /// entries (installed actions plus the default action). Drives the
  /// unused-action removal specialization of Fig. 3.
  std::vector<std::string> reachableActions() const;

 private:
  void validate(const TableEntry& entry) const;
  /// Precedence comparator: true if a should be tried before b.
  bool precedes(const TableEntry& a, const TableEntry& b) const;
  /// Canonical key of an entry's match set + priority — equal signatures iff
  /// the duplicate predicate (sameMatchSet && equal priority) holds.
  std::string matchSignature(const TableEntry& e) const;
  void indexEntry(const TableEntry& e, size_t index);
  /// Rebuilds idToIndex_ for entries_[from..] after an erase shifted them.
  void reindexFrom(size_t from);

  const p4::ControlDecl* control_;
  const p4::TableDecl* decl_;
  std::vector<TableEntry> entries_;
  /// Multiplicity of each match signature among entries_. insert() rejects
  /// signatures with count > 0 in O(1) — the burst-path fix for the O(n)
  /// duplicate scan that made a 1k-entry batch O(n^2). A count (not a set)
  /// because modify() historically permits creating duplicate match sets.
  std::unordered_map<std::string, uint32_t> sigCount_;
  /// Entry id -> position in entries_, for O(1) modify/remove/restore.
  std::unordered_map<uint64_t, size_t> idToIndex_;
  std::string defaultActionName_;
  std::vector<BitVec> defaultActionArgs_;
  bool hasTernary_ = false;
  bool hasLpm_ = false;
  size_t lpmIndex_ = 0;  // index of the lpm key, if hasLpm_
  size_t lpmKeys_ = 0;   // number of lpm keys
  /// Entries sharing a match signature with an earlier entry (only modify()
  /// can create these; insert rejects duplicates). Nonzero disables the
  /// no-eclipse fast path in normalizedEntries().
  size_t duplicateEntries_ = 0;
  uint64_t nextId_ = 1;
};

}  // namespace flay::runtime

#endif  // FLAY_RUNTIME_TABLE_STATE_H
