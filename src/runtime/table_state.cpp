#include "runtime/table_state.h"

#include <algorithm>
#include <stdexcept>

namespace flay::runtime {

TableState::TableState(const p4::ControlDecl& control,
                       const p4::TableDecl& decl)
    : control_(&control), decl_(&decl) {
  defaultActionName_ = decl.defaultAction.name;
  for (const auto& arg : decl.defaultAction.args) {
    defaultActionArgs_.push_back(arg->value);
  }
  for (size_t i = 0; i < decl.keys.size(); ++i) {
    if (decl.keys[i].matchKind == p4::MatchKind::kTernary) hasTernary_ = true;
    if (decl.keys[i].matchKind == p4::MatchKind::kLpm) {
      hasLpm_ = true;
      lpmIndex_ = i;
      ++lpmKeys_;
    }
  }
}

void TableState::validate(const TableEntry& entry) const {
  if (entry.matches.size() != decl_->keys.size()) {
    throw std::invalid_argument(
        qualifiedName() + ": entry has " +
        std::to_string(entry.matches.size()) + " matches, table has " +
        std::to_string(decl_->keys.size()) + " keys");
  }
  for (size_t i = 0; i < entry.matches.size(); ++i) {
    const FieldMatch& m = entry.matches[i];
    const p4::KeyElement& k = decl_->keys[i];
    if (m.value.width() != k.expr->width) {
      throw std::invalid_argument(
          qualifiedName() + ": key " + std::to_string(i) + " width " +
          std::to_string(m.value.width()) + " does not match bit<" +
          std::to_string(k.expr->width) + ">");
    }
    if (m.kind != k.matchKind) {
      throw std::invalid_argument(qualifiedName() + ": key " +
                                  std::to_string(i) + " match kind mismatch");
    }
  }
  // Action must be in the table's action list (or the builtin noop).
  bool listed = entry.actionName == "noop" || entry.actionName == "NoAction";
  for (const auto& a : decl_->actionNames) listed |= a == entry.actionName;
  if (!listed) {
    throw std::invalid_argument(qualifiedName() + ": action '" +
                                entry.actionName +
                                "' is not in the table's action list");
  }
  const p4::ActionDecl* action = control_->findAction(entry.actionName);
  size_t expected = action != nullptr ? action->params.size() : 0;
  if (entry.actionArgs.size() != expected) {
    throw std::invalid_argument(qualifiedName() + ": action '" +
                                entry.actionName + "' expects " +
                                std::to_string(expected) + " arguments");
  }
  if (action != nullptr) {
    for (size_t i = 0; i < expected; ++i) {
      if (entry.actionArgs[i].width() != action->params[i].width) {
        throw std::invalid_argument(qualifiedName() + ": argument " +
                                    std::to_string(i) + " width mismatch");
      }
    }
  }
  if (entry.priority != 0 && !hasTernary_) {
    throw std::invalid_argument(
        qualifiedName() + ": priorities are only valid with ternary keys");
  }
}

std::string TableState::matchSignature(const TableEntry& e) const {
  // FieldMatch::operator== compares (mask, value & mask), so rendering
  // exactly those two plus the priority makes signature equality coincide
  // with the duplicate predicate. Kinds need not be mixed in: validate()
  // pins every match kind to the table schema.
  std::string sig = std::to_string(e.priority);
  for (const auto& m : e.matches) {
    sig += '|';
    sig += m.mask.toHexString();
    sig += ':';
    sig += m.value.bitAnd(m.mask).toHexString();
  }
  return sig;
}

void TableState::indexEntry(const TableEntry& e, size_t index) {
  if (++sigCount_[matchSignature(e)] >= 2) ++duplicateEntries_;
  idToIndex_[e.id] = index;
}

void TableState::reindexFrom(size_t from) {
  for (size_t i = from; i < entries_.size(); ++i) {
    idToIndex_[entries_[i].id] = i;
  }
}

uint64_t TableState::insert(TableEntry entry) {
  validate(entry);
  if (entries_.size() >= decl_->size) {
    throw std::invalid_argument(qualifiedName() + ": table is full (size " +
                                std::to_string(decl_->size) + ")");
  }
  std::string sig = matchSignature(entry);
  auto sit = sigCount_.find(sig);
  if (sit != sigCount_.end() && sit->second > 0) {
    throw std::invalid_argument(qualifiedName() +
                                ": duplicate entry " + entry.toString());
  }
  entry.id = nextId_++;
  ++sigCount_[std::move(sig)];
  idToIndex_[entry.id] = entries_.size();
  entries_.push_back(std::move(entry));
  return entries_.back().id;
}

void TableState::restoreEntry(TableEntry entry) {
  validate(entry);
  if (entry.id == 0) {
    throw std::invalid_argument(qualifiedName() +
                                ": restoreEntry needs an explicit id");
  }
  if (entries_.size() >= decl_->size) {
    throw std::invalid_argument(qualifiedName() + ": table is full (size " +
                                std::to_string(decl_->size) + ")");
  }
  if (idToIndex_.count(entry.id) != 0) {
    throw std::invalid_argument(qualifiedName() + ": duplicate restored id " +
                                std::to_string(entry.id));
  }
  std::string sig = matchSignature(entry);
  auto sit = sigCount_.find(sig);
  if (sit != sigCount_.end() && sit->second > 0) {
    throw std::invalid_argument(qualifiedName() + ": duplicate entry " +
                                entry.toString());
  }
  if (entry.id >= nextId_) nextId_ = entry.id + 1;
  ++sigCount_[std::move(sig)];
  idToIndex_[entry.id] = entries_.size();
  entries_.push_back(std::move(entry));
}

void TableState::modify(TableEntry entry) {
  validate(entry);
  auto it = idToIndex_.find(entry.id);
  if (it == idToIndex_.end()) {
    throw std::invalid_argument(qualifiedName() + ": no entry with id " +
                                std::to_string(entry.id));
  }
  TableEntry& e = entries_[it->second];
  auto sit = sigCount_.find(matchSignature(e));
  if (sit != sigCount_.end()) {
    if (sit->second >= 2) --duplicateEntries_;
    if (--sit->second == 0) sigCount_.erase(sit);
  }
  if (++sigCount_[matchSignature(entry)] >= 2) ++duplicateEntries_;
  e = std::move(entry);
}

void TableState::remove(uint64_t id) {
  auto it = idToIndex_.find(id);
  if (it == idToIndex_.end()) {
    throw std::invalid_argument(qualifiedName() + ": no entry with id " +
                                std::to_string(id));
  }
  size_t index = it->second;
  auto sit = sigCount_.find(matchSignature(entries_[index]));
  if (sit != sigCount_.end()) {
    if (sit->second >= 2) --duplicateEntries_;
    if (--sit->second == 0) sigCount_.erase(sit);
  }
  idToIndex_.erase(it);
  entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(index));
  reindexFrom(index);
}

void TableState::clear() {
  entries_.clear();
  sigCount_.clear();
  idToIndex_.clear();
  duplicateEntries_ = 0;
}

void TableState::reserve(size_t n) {
  entries_.reserve(n);
  sigCount_.reserve(n);
  idToIndex_.reserve(n);
}

void TableState::setDefaultAction(std::string actionName,
                                  std::vector<BitVec> args) {
  TableEntry probe;
  probe.actionName = actionName;
  probe.actionArgs = args;
  // Reuse entry validation for the action part by faking the key matches.
  for (const auto& k : decl_->keys) {
    FieldMatch m;
    m.kind = k.matchKind;
    m.value = BitVec::zero(k.expr->width);
    m.mask = k.matchKind == p4::MatchKind::kExact
                 ? BitVec::allOnes(k.expr->width)
                 : BitVec::zero(k.expr->width);
    probe.matches.push_back(std::move(m));
  }
  validate(probe);
  defaultActionName_ = std::move(actionName);
  defaultActionArgs_ = std::move(args);
}

bool TableState::precedes(const TableEntry& a, const TableEntry& b) const {
  if (hasTernary_) {
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.id < b.id;  // deterministic tie-break: older first
  }
  if (hasLpm_) {
    uint32_t pa = a.matches[lpmIndex_].prefixLen;
    uint32_t pb = b.matches[lpmIndex_].prefixLen;
    if (pa != pb) return pa > pb;  // longest prefix first
    return a.id < b.id;
  }
  return a.id < b.id;
}

std::vector<const TableEntry*> TableState::normalizedEntries() const {
  std::vector<const TableEntry*> sorted;
  sorted.reserve(entries_.size());
  for (const auto& e : entries_) sorted.push_back(&e);
  std::sort(sorted.begin(), sorted.end(),
            [this](const TableEntry* a, const TableEntry* b) {
              return precedes(*a, *b);
            });
  // Without ternary keys and with at most one lpm key, eclipse is
  // structurally impossible: an earlier entry under this sort has a
  // longer-or-equal prefix, so its region can only contain a later one's if
  // the match sets are identical — which insert rejects and only modify()
  // can manufacture. That makes normalization O(n log n) for FIB-shaped
  // tables, where the quadratic scan below would dominate million-entry
  // bulk loads.
  if (!hasTernary_ && lpmKeys_ <= 1 && duplicateEntries_ == 0) return sorted;
  // Drop entries whose whole match region is covered by a single earlier
  // entry: they can never be the winning match. (Covering by a union of
  // earlier entries is not detected; that is an optimization, not a
  // soundness requirement.)
  std::vector<const TableEntry*> result;
  for (const TableEntry* e : sorted) {
    bool eclipsed = false;
    for (const TableEntry* winner : result) {
      if (winner->covers(*e)) {
        eclipsed = true;
        break;
      }
    }
    if (!eclipsed) result.push_back(e);
  }
  return result;
}

const TableEntry* TableState::lookup(const std::vector<BitVec>& key) const {
  const TableEntry* best = nullptr;
  for (const auto& e : entries_) {
    if (!e.matchesKey(key)) continue;
    if (best == nullptr || precedes(e, *best)) best = &e;
  }
  return best;
}

std::vector<std::string> TableState::reachableActions() const {
  std::vector<std::string> result;
  auto add = [&result](const std::string& name) {
    if (std::find(result.begin(), result.end(), name) == result.end()) {
      result.push_back(name);
    }
  };
  for (const TableEntry* e : normalizedEntries()) add(e->actionName);
  add(defaultActionName_);
  return result;
}

}  // namespace flay::runtime
