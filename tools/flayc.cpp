// flayc — command-line driver for the Flay toolchain.
//
//   flayc check      <prog.p4l>    parse + type-check, print stats
//   flayc print      <prog.p4l>    normalized P4-lite source to stdout
//   flayc analyze    <prog.p4l>    data-plane analysis summary
//   flayc compile    <prog.p4l>    RMT placement report (stage map)
//   flayc specialize <prog.p4l>    specialize against the empty config and
//                                  print the specialized source
//   flayc fuzz       <prog.p4l>    apply a fuzzed control-plane update run,
//                                  report the verdict mix, and verify the
//                                  incremental analysis against a scratch
//                                  respecialization (non-zero exit on drift)
//   flayc difftest   <prog.p4l>    differential oracle: replay a fuzzed
//                                  update script, checking after every update
//                                  that the specialized program forwards
//                                  packets identically to the original; on
//                                  divergence, shrink and print a replayable
//                                  reproducer (non-zero exit)
//   flayc crashtest  <prog.p4l>    crash-recovery check: apply a fuzzed
//                                  update run through the fault-tolerant
//                                  controller, simulate SIGKILL at random
//                                  points, recover from the write-ahead
//                                  journal, and require the recovered state
//                                  digest to match an uninterrupted run
//                                  (non-zero exit on any mismatch)
//   flayc fleet      <prog.p4l>    drive a fleet of N simulated devices:
//                                  broadcast a fuzzed update stream to every
//                                  device, drain the per-device queues
//                                  concurrently over a shared thread pool
//                                  with one verdict cache across all
//                                  services, and require every device to end
//                                  in the identical state (non-zero exit on
//                                  divergence or a failed device); with
//                                  --transport socket every device runs
//                                  behind an in-process agent speaking the
//                                  versioned wire protocol
//   flayc daemon     <prog.p4l>    controller daemon: listen on a Unix-domain
//                                  socket (--listen), accept one agent per
//                                  device (optionally fork/exec them with
//                                  --spawn), shard by program fingerprint,
//                                  stream a fuzzed update script as pipelined
//                                  batch frames, and require identical agent
//                                  state digests (non-zero exit on
//                                  divergence or a dead link)
//   flayc agent      <prog.p4l>    device agent: connect to a daemon
//                                  (--connect), run one fault-tolerant
//                                  controller + simulated device, and serve
//                                  wire-protocol requests until the daemon
//                                  says goodbye
//   flayc ifc        <prog.p4l>    information-flow check: load a label/sink
//                                  policy (--policy), verdict every
//                                  source->sink flow of the specialized
//                                  program, replay a fuzzed update stream,
//                                  and after every update cross-check the
//                                  incremental re-verdicts against a
//                                  from-scratch engine (non-zero exit on
//                                  drift)
//
// Options:
//   --skip-parser       analyze without symbolic parser execution
//   --iterations N      placement search budget (default 400)
//   --config NAME       canned config: scion-v4 | scion-v4v6 (scion.p4l)
//   --updates N         fuzz/difftest: number of updates (default 100)
//   --seed S            fuzz/difftest: RNG seed (default 42)
//   --packets M         difftest: probe packets per equivalence check (32)
//   --shrink/--no-shrink  difftest: minimize counterexamples (default on)
//   --replay-updates L  difftest: replay only script indices "3,17,42"
//                       ("none" = no updates, probe the initial config only)
//   --packet-hex HEX    difftest: probe with exactly this packet
//   --ingress-port P    difftest: ingress port for --packet-hex (default 0)
//   --sabotage MODE     difftest: inject a specializer fault (drop-entry)
//                       to prove the oracle catches it
//   --fault-plan P      difftest: drive a fault-tolerant controller against
//                       a device injecting the named built-in plan (none,
//                       transient, flaky, reject-compile, outage, slow) or a
//                       spec like "fail-first=2,seed=7"; the oracle then
//                       checks the degradation invariant
//   --jobs N            specialize/fuzz/difftest/crashtest: run the
//                       semantics-check probes of each specialization on N
//                       threads (default 1; verdicts are identical at any N)
//   --no-verdict-cache  disable the canonical-digest verdict cache (A/B
//                       switch; verdicts are identical either way)
//   --no-incremental-sat  probe with a fresh SAT solver per semantics check
//                       instead of warm per-worker incremental sessions (A/B
//                       switch; verdicts are identical either way)
//   --kill-points K     crashtest: number of simulated-SIGKILL positions (20)
//   --checkpoint-every C  crashtest/fleet: updates between checkpoints (16)
//   --state-dir DIR     crashtest: journal/checkpoint directory (default: a
//                       fresh directory under the current one, removed after)
//                       fleet: per-device journal root (default: in-memory)
//   --devices N         fleet: number of managed devices (default 4)
//   --queue-cap Q       fleet: per-device work-queue capacity; updates
//                       enqueued beyond it are dropped, never blocking the
//                       rest of the fleet (default 0 = unbounded)
//   --no-shared-cache   fleet: give every device a private verdict cache
//                       instead of the fleet-wide shared one (A/B switch)
//   --transport T       fleet/replay: inproc (direct calls, default) or
//                       socket (per-device agents over the wire protocol);
//                       the two produce byte-identical fleet digests
//   --listen PATH       daemon: Unix-domain socket path to bind
//   --connect PATH      agent: daemon socket path to connect to
//   --device NAME       agent: device name presented in the hello (dev0)
//   --spawn             daemon: fork/exec one `flayc agent` per device
//   --policy FILE       ifc: label/sink/declassify policy file (required)
//   --ifc-policy FILE   fuzz/difftest: additionally run the information-flow
//                       engine over the same update stream, cross-checking
//                       incremental vs from-scratch verdicts every update
//   --torn-tail         crashtest: append a torn half-record to the journal
//                       before recovery (simulates a write cut by the crash)
//   --stats[=json]      print the observability registry (counters and
//                       per-phase latency histograms) before exiting
//   --trace-out FILE    append one JSONL trace event per timed phase
//
// Argument errors (unknown flags, flags missing their value, malformed
// values) print a one-line error and exit 2.

#include <dirent.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "controller/controller.h"
#include "flay/specializer.h"
#include "ifc/ifc.h"
#include "fleet/agent.h"
#include "fleet/fleet.h"
#include "net/fuzzer.h"
#include "net/mix.h"
#include "net/workloads.h"
#include "obs/obs.h"
#include "replay/replay.h"
#include "support/stopwatch.h"
#include "oracle/oracle.h"
#include "p4/printer.h"
#include "tofino/compiler.h"

namespace p4 = flay::p4;
namespace net = flay::net;
namespace tofino = flay::tofino;
namespace core = flay::flay;
namespace runtime = flay::runtime;
namespace obs = flay::obs;
namespace oracle = flay::oracle;
namespace ctrl = flay::controller;
namespace ifc = flay::ifc;
namespace fleet = flay::fleet;
namespace replay = flay::replay;
namespace wire = flay::wire;
using flay::support::Stopwatch;

namespace {

struct Options {
  std::string command;
  std::string file;
  bool skipParser = false;
  uint32_t iterations = 400;
  std::string config;
  size_t updates = 100;
  uint64_t seed = 42;
  size_t packets = 32;
  bool packetsSet = false;
  std::string mix = "heavy-hitter";
  double churnRate = 0;
  size_t window = 8192;
  bool shrink = true;
  bool replayUpdatesSet = false;
  std::vector<size_t> replayUpdates;
  std::vector<uint8_t> packetHex;
  uint32_t ingressPort = 0;
  std::string sabotage;
  std::string faultPlan;
  size_t jobs = 1;
  bool verdictCache = true;
  bool incrementalSat = true;
  size_t killPoints = 20;
  size_t checkpointEvery = 16;
  std::string stateDir;
  size_t devices = 4;
  size_t queueCap = 0;
  bool sharedCache = true;
  bool tornTail = false;
  bool stats = false;
  bool statsJson = false;
  std::string traceOut;
  bool bulk = false;
  size_t chunk = 4096;
  std::string transport = "inproc";
  std::string listenPath;
  std::string connectPath;
  std::string deviceName = "dev0";
  bool spawnAgents = false;
  std::string policyFile;     // ifc: required --policy
  std::string ifcPolicyFile;  // fuzz/difftest: optional --ifc-policy
  std::string argv0;  // for daemon --spawn re-exec
};

int usage() {
  std::fprintf(
      stderr,
      "usage: flayc "
      "<check|print|analyze|compile|specialize|fuzz|bulkload|difftest|"
      "crashtest|fleet|replay|daemon|agent|ifc> "
      "<prog.p4l> [--skip-parser] [--iterations N] [--config NAME]\n"
      "             [--bulk] [--chunk N]\n"
      "             [--updates N] [--seed S] [--packets M] [--no-shrink]\n"
      "             [--replay-updates i,j,k|none] [--packet-hex HEX] "
      "[--ingress-port P]\n"
      "             [--sabotage drop-entry] [--fault-plan P]\n"
      "             [--jobs N] [--no-verdict-cache] [--no-incremental-sat]\n"
      "             [--kill-points K] [--checkpoint-every C] "
      "[--state-dir DIR] [--torn-tail]\n"
      "             [--devices N] [--queue-cap Q] [--no-shared-cache]\n"
      "             [--transport inproc|socket] [--listen PATH] "
      "[--connect PATH]\n"
      "             [--device NAME] [--spawn]\n"
      "             [--mix uniform|heavy-hitter|port-scan|tunnel] "
      "[--churn-rate R] [--window W]\n"
      "             [--policy FILE] [--ifc-policy FILE]\n"
      "             [--stats[=json]] [--trace-out FILE]\n");
  return 2;
}

/// Argument errors are caught at parse time: one line to stderr, exit 2.
[[noreturn]] void argError(const std::string& message) {
  std::fprintf(stderr, "flayc: %s\n", message.c_str());
  std::exit(2);
}

/// "3,17,42" -> {3,17,42}; "none" -> {} (distinct from unset via the flag).
std::vector<size_t> parseIndexList(const std::string& s) {
  std::vector<size_t> out;
  if (s == "none") return out;
  size_t pos = 0;
  while (pos <= s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    std::string item = s.substr(pos, comma - pos);
    if (item.empty() ||
        item.find_first_not_of("0123456789") != std::string::npos) {
      argError("bad index '" + item + "' in --replay-updates (want i,j,k or "
               "none)");
    }
    out.push_back(std::strtoul(item.c_str(), nullptr, 10));
    pos = comma + 1;
    if (comma == s.size()) break;
  }
  return out;
}

std::vector<uint8_t> parseHexBytes(const std::string& s) {
  std::vector<uint8_t> out;
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  if (s.empty() || s.size() % 2 != 0) {
    argError("--packet-hex needs a non-empty even digit count");
  }
  for (size_t i = 0; i + 1 < s.size(); i += 2) {
    int hi = nibble(s[i]), lo = nibble(s[i + 1]);
    if (hi < 0 || lo < 0) argError("bad hex digit in --packet-hex");
    out.push_back(static_cast<uint8_t>(hi << 4 | lo));
  }
  return out;
}

uint64_t parseNumber(const std::string& s, const char* flag) {
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) {
    argError(std::string("bad number '") + s + "' for " + flag);
  }
  return std::strtoull(s.c_str(), nullptr, 10);
}

/// A built-in plan name (none, transient, flaky, ...) or a "key=value,..."
/// spec; a malformed spec is an argument error (one line, exit 2).
ctrl::FaultPlan parseFaultPlan(const std::string& spec) {
  for (const auto& [name, plan] : ctrl::FaultPlan::builtinPlans()) {
    if (name == spec) return plan;
  }
  try {
    return ctrl::FaultPlan::parse(spec);
  } catch (const std::invalid_argument& e) {
    argError(e.what());
  }
}

core::SpecializerOptions specializerOptions(const Options& opts) {
  core::SpecializerOptions sopts;
  sopts.jobs = opts.jobs;
  sopts.useVerdictCache = opts.verdictCache;
  sopts.incrementalSat = opts.incrementalSat;
  return sopts;
}

void applyCannedConfig(core::FlayService& service, const std::string& name) {
  if (name == "scion-v4" || name == "scion-v4v6") {
    for (const auto& u : net::scionCommonConfig()) service.applyUpdate(u);
    for (const auto& u : net::scionV4Config(16)) service.applyUpdate(u);
    if (name == "scion-v4v6") {
      service.applyBatch(net::scionV6Config(8));
    }
    return;
  }
  if (!name.empty()) {
    std::fprintf(stderr, "unknown --config '%s' (try scion-v4)\n",
                 name.c_str());
  }
}

int cmdCheck(const p4::CheckedProgram& checked) {
  const p4::Program& prog = checked.program;
  std::printf("ok: %zu statements, %zu headers, %zu parsers, %zu controls\n",
              prog.statementCount(), prog.headerTypes.size(),
              prog.parsers.size(), prog.controls.size());
  size_t tables = 0, actions = 0;
  for (const auto& c : prog.controls) {
    tables += c.tables.size();
    actions += c.actions.size();
  }
  std::printf("    %zu tables, %zu actions, %zu scalar locations\n", tables,
              actions, checked.env.fields().size());
  return 0;
}

int cmdAnalyze(const p4::CheckedProgram& checked, const Options& opts) {
  core::FlayOptions foptions;
  foptions.analysis.analyzeParser = !opts.skipParser;
  core::FlayService service(checked, foptions);
  applyCannedConfig(service, opts.config);
  const auto& analysis = service.analysis();
  std::printf("data-plane analysis: %.2f ms (+%.2f ms preprocessing)\n",
              service.dataPlaneAnalysisTime().count() / 1000.0,
              service.preprocessTime().count() / 1000.0);
  std::printf("program points: %zu\n", analysis.annotations.points().size());
  std::printf("tables: %zu, value-set uses: %zu\n", analysis.tables.size(),
              analysis.valueSetUses.size());
  std::printf("taint map:\n");
  for (const auto& [object, points] : analysis.annotations.taintMap()) {
    std::printf("  %-40s -> %zu points\n", object.c_str(), points.size());
  }
  return 0;
}

int cmdCompile(const p4::CheckedProgram& checked, const Options& opts) {
  tofino::CompilerOptions copts;
  copts.searchIterations = opts.iterations;
  tofino::PipelineCompiler compiler(tofino::PipelineModel{}, copts);
  tofino::CompileResult r = compiler.compile(checked);
  if (!r.fits) {
    std::printf("compile FAILED: %s\n", r.error.c_str());
    return 1;
  }
  std::printf("fits: %u stages, tcam=%u sram=%u alu=%u phv=%u (%.1f ms)\n",
              r.stagesUsed, r.tcamBlocksUsed, r.sramBlocksUsed, r.aluOpsUsed,
              r.phvBitsUsed, r.compileTime.count() / 1000.0);
  for (size_t s = 0; s < r.stageAssignment.size(); ++s) {
    std::printf("  stage %2zu:", s + 1);
    for (const auto& name : r.stageAssignment[s]) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n");
  }
  return 0;
}

int cmdSpecialize(const p4::CheckedProgram& checked, const Options& opts) {
  core::FlayOptions foptions;
  foptions.analysis.analyzeParser = !opts.skipParser;
  core::FlayService service(checked, foptions);
  applyCannedConfig(service, opts.config);
  auto result = core::Specializer(service, specializerOptions(opts)).specialize();
  std::fprintf(stderr,
               "// specialization: %zu tables removed, %zu inlined, "
               "%zu actions removed, %zu keys tightened,\n"
               "// %zu branches eliminated, %zu constants propagated, "
               "%zu select cases removed\n",
               result.stats.removedTables, result.stats.inlinedTables,
               result.stats.removedActions, result.stats.convertedKeys,
               result.stats.eliminatedBranches,
               result.stats.propagatedConstants,
               result.stats.removedSelectCases);
  for (const auto& h : result.stats.prunableHeaders) {
    std::fprintf(stderr, "// parser-tail pruning candidate: %s\n", h.c_str());
  }
  for (const auto& h : result.stats.deadHeaders) {
    std::fprintf(stderr, "// dead header (PHV/checksum reclaimable): %s\n",
                 h.c_str());
  }
  std::printf("%s", p4::printProgram(result.program).c_str());
  return 0;
}

/// Loads and validates a policy for --policy/--ifc-policy; a malformed or
/// mismatched file is an argument error (one line, exit 2), the same
/// contract as every other flag value.
ifc::IfcPolicy loadPolicy(const std::string& path,
                          const p4::CheckedProgram& checked) {
  try {
    ifc::IfcPolicy policy = ifc::IfcPolicy::parseFile(path);
    policy.validate(checked);
    return policy;
  } catch (const std::invalid_argument& e) {
    argError(e.what());
  }
}

int cmdFuzz(const p4::CheckedProgram& checked, const Options& opts) {
  core::FlayOptions foptions;
  foptions.analysis.analyzeParser = !opts.skipParser;
  core::FlayService service(checked, foptions);
  applyCannedConfig(service, opts.config);

  // --ifc-policy rider: the attached engine re-verdicts incrementally after
  // every analyzed update; each applied update is then cross-checked
  // against a from-scratch engine over the same state.
  std::shared_ptr<ifc::IfcEngine> ifcEngine;
  if (!opts.ifcPolicyFile.empty()) {
    ifcEngine = std::make_shared<ifc::IfcEngine>(
        service, loadPolicy(opts.ifcPolicyFile, checked));
    service.attachAnalysis(ifcEngine);
    ifcEngine->recheck();
  }
  auto ifcConsistent = [&]() -> bool {
    return ifcEngine == nullptr ||
           ifcEngine->recheckFromScratch().render() ==
               ifcEngine->lastReport().render();
  };

  const auto& tables = service.analysis().tables;
  if (tables.empty()) {
    std::fprintf(stderr, "fuzz: program has no tables\n");
    return 1;
  }

  // Pre-generate a pool of schema-valid entries per table (tables whose key
  // space is too small for the requested count are skipped), then apply them
  // round-robin. Every 8th update deletes a previously installed entry so
  // the run also exercises the delete path.
  net::EntryFuzzer fuzzer(opts.seed);
  struct Pool {
    std::string table;
    std::vector<runtime::TableEntry> entries;
    size_t next = 0;
  };
  std::vector<Pool> pools;
  size_t perTable = opts.updates / tables.size() + 1;
  for (const auto& info : tables) {
    Pool pool;
    pool.table = info.qualified;
    try {
      pool.entries =
          fuzzer.uniqueEntries(service.config().table(info.qualified), perTable);
    } catch (const std::exception&) {
      continue;  // schema admits too few distinct keys at this count
    }
    pools.push_back(std::move(pool));
  }
  if (pools.empty()) {
    std::fprintf(stderr, "fuzz: no table schema admits %zu entries\n",
                 perTable);
    return 1;
  }

  if (opts.bulk) {
    // Route the insert pools through the streaming bulk path instead of
    // per-update applies (inserts only: deletes need installed ids, which a
    // pure insert stream does not carry). The consistency oracle below
    // checks the exact same invariant either way.
    std::vector<runtime::Update> updates;
    bool progress = true;
    while (updates.size() < opts.updates && progress) {
      progress = false;
      for (Pool& pool : pools) {
        if (updates.size() >= opts.updates) break;
        if (pool.next >= pool.entries.size()) continue;
        updates.push_back(
            runtime::Update::insert(pool.table, pool.entries[pool.next++]));
        progress = true;
      }
    }
    core::BulkLoadOptions bopts;
    bopts.chunkSize = opts.chunk;
    core::BulkLoadReport rep = service.bulkLoad(updates, bopts);
    std::printf(
        "fuzz run (bulk): %llu/%llu updates applied (%llu bypassed, "
        "%llu analyzed, %llu rejected) in %zu chunk(s) of %zu across %zu "
        "tables\n",
        static_cast<unsigned long long>(rep.applied),
        static_cast<unsigned long long>(rep.updates),
        static_cast<unsigned long long>(rep.bypassed),
        static_cast<unsigned long long>(rep.analyzed),
        static_cast<unsigned long long>(rep.rejected), rep.chunks, opts.chunk,
        pools.size());
    std::printf("  expression-changing:  %s\n",
                rep.expressionsChanged ? "yes" : "no");
    std::printf("  recompile-requiring:  %s\n",
                rep.needsRecompilation ? "yes" : "no");
    if (!ifcConsistent()) {
      std::fprintf(stderr, "fuzz: IFC INCREMENTAL DRIFT after bulk load\n");
      return 1;
    }
  } else {
  size_t applied = 0, inserts = 0, deletes = 0, rejected = 0;
  size_t exprChanges = 0, recompiles = 0;
  std::vector<std::pair<std::string, uint64_t>> installed;
  while (applied < opts.updates) {
    bool progress = false;
    for (Pool& pool : pools) {
      if (applied >= opts.updates) break;
      core::UpdateVerdict verdict;
      if (applied % 8 == 7 && !installed.empty()) {
        auto [table, id] = installed.back();
        installed.pop_back();
        verdict = service.applyUpdate(runtime::Update::remove(table, id));
        ++deletes;
      } else {
        if (pool.next >= pool.entries.size()) continue;
        runtime::TableEntry entry = pool.entries[pool.next++];
        try {
          verdict =
              service.applyUpdate(runtime::Update::insert(pool.table, entry));
        } catch (const std::invalid_argument&) {
          ++rejected;  // e.g. duplicate of a canned-config entry
          progress = true;
          continue;
        }
        installed.emplace_back(pool.table,
                               service.config()
                                   .table(pool.table)
                                   .entries()
                                   .back()
                                   .id);
        ++inserts;
      }
      ++applied;
      progress = true;
      if (verdict.expressionsChanged) ++exprChanges;
      if (verdict.needsRecompilation) ++recompiles;
      if (!ifcConsistent()) {
        std::fprintf(stderr,
                     "fuzz: IFC INCREMENTAL DRIFT after %zu update(s)\n"
                     "  reproduce: flayc fuzz %s --ifc-policy %s --updates "
                     "%zu --seed %llu\n",
                     applied, opts.file.c_str(), opts.ifcPolicyFile.c_str(),
                     opts.updates,
                     static_cast<unsigned long long>(opts.seed));
        return 1;
      }
    }
    if (!progress) break;
  }

  std::printf("fuzz run: %zu updates applied (%zu inserts, %zu deletes, "
              "%zu rejected) across %zu tables\n",
              applied, inserts, deletes, rejected, pools.size());
  std::printf("  expression-changing:  %zu\n", exprChanges);
  std::printf("  recompile-requiring:  %zu\n", recompiles);
  std::printf("  semantics-preserving: %zu\n", applied - recompiles);
  }

  // Turn the stats run into a pass/fail check: the incremental analysis of
  // the whole run must agree with a from-scratch respecialization.
  oracle::ConsistencyReport consistency =
      oracle::checkIncrementalConsistency(service);
  if (!consistency.consistent) {
    std::fprintf(stderr,
                 "fuzz: INCREMENTAL DRIFT — %zu program point(s) disagree "
                 "with a from-scratch respecialization:",
                 consistency.mismatchedPoints.size());
    for (uint32_t p : consistency.mismatchedPoints) {
      std::fprintf(stderr, " %u", p);
    }
    std::fprintf(stderr, "\n  reproduce: flayc fuzz %s --updates %zu --seed "
                 "%llu\n", opts.file.c_str(), opts.updates,
                 static_cast<unsigned long long>(opts.seed));
    return 1;
  }
  std::printf("  incremental-vs-scratch: consistent (%zu points)\n",
              service.analysis().annotations.points().size());
  if (ifcEngine != nullptr) {
    std::printf("  ifc: %zu flow(s), %zu violation(s), "
                "incremental-vs-scratch: consistent\n",
                ifcEngine->lastReport().flows.size(),
                ifcEngine->lastReport().violations());
  }

  // Specialize the fuzzed state through the semantics-check engine so
  // --jobs / --no-verdict-cache are exercised end-to-end. The verdict line
  // is what cache-equivalence checks compare across settings: every number
  // is a pure function of the fuzzed config, independent of thread count
  // and cache state.
  auto result =
      core::Specializer(service, specializerOptions(opts)).specialize();
  std::printf("  specialization verdicts: %zu changes, %zu solver queries, "
              "%zu timeouts\n",
              result.stats.totalChanges(), result.stats.solverQueries,
              result.stats.solverTimeouts);
  return 0;
}

int cmdBulkload(const p4::CheckedProgram& checked, const Options& opts) {
  core::FlayOptions foptions;
  foptions.analysis.analyzeParser = !opts.skipParser;
  core::FlayService service(checked, foptions);
  applyCannedConfig(service, opts.config);

  // Stream source: the bulkroute workload generator when the program has
  // its FIB (constant memory at any --updates), otherwise a materialized
  // fuzzer pool round-robined across the program's tables.
  core::UpdateSource source;
  size_t next = 0;
  std::vector<runtime::Update> pool;
  if (service.config().hasTable("BulkIngress.routes")) {
    source = [&]() -> std::optional<runtime::Update> {
      if (next >= opts.updates) return std::nullopt;
      return net::bulkRouteUpdate(next++, opts.seed);
    };
  } else {
    pool = net::fuzzUpdateSequence(checked, opts.updates, opts.seed);
    source = [&]() -> std::optional<runtime::Update> {
      if (next >= pool.size()) return std::nullopt;
      return pool[next++];
    };
  }

  core::BulkLoadOptions bopts;
  bopts.chunkSize = opts.chunk;
  obs::Histogram verdictLatency;
  Stopwatch timer;
  core::BulkLoadReport rep = service.applyStream(
      source, bopts, [&](const core::BulkChunkVerdict& chunk) {
        verdictLatency.record(chunk.verdictLatencyUs);
      });
  double secs = timer.elapsedSeconds();

  std::printf(
      "bulkload: %llu/%llu updates applied (%llu bypassed, %llu analyzed, "
      "%llu rejected) in %zu chunk(s) of %zu\n",
      static_cast<unsigned long long>(rep.applied),
      static_cast<unsigned long long>(rep.updates),
      static_cast<unsigned long long>(rep.bypassed),
      static_cast<unsigned long long>(rep.analyzed),
      static_cast<unsigned long long>(rep.rejected), rep.chunks, opts.chunk);
  std::printf("  sustained: %.0f updates/s (%.3f s wall)\n",
              secs > 0 ? rep.updates / secs : 0.0, secs);
  std::printf("  verdict latency: p50=%lluus p99=%lluus max=%lluus\n",
              static_cast<unsigned long long>(verdictLatency.quantile(0.5)),
              static_cast<unsigned long long>(verdictLatency.quantile(0.99)),
              static_cast<unsigned long long>(verdictLatency.max()));
  std::printf("  expression-changing: %s, recompile-requiring: %s\n",
              rep.expressionsChanged ? "yes" : "no",
              rep.needsRecompilation ? "yes" : "no");

  // Pass/fail: the bulk path's incremental state must agree with a
  // from-scratch respecialization of the final config — the same oracle
  // fuzz runs use, which also covers every bypassed entry.
  oracle::ConsistencyReport consistency =
      oracle::checkIncrementalConsistency(service);
  if (!consistency.consistent) {
    std::fprintf(stderr,
                 "bulkload: INCREMENTAL DRIFT — %zu program point(s) disagree "
                 "with a from-scratch respecialization\n",
                 consistency.mismatchedPoints.size());
    std::fprintf(stderr,
                 "  reproduce: flayc bulkload %s --updates %zu --seed %llu "
                 "--chunk %zu\n",
                 opts.file.c_str(), opts.updates,
                 static_cast<unsigned long long>(opts.seed), opts.chunk);
    return 1;
  }
  std::printf("  incremental-vs-scratch: consistent (%zu points)\n",
              service.analysis().annotations.points().size());
  std::printf("  state digest: %s\n", service.stateDigest().c_str());

  // Specialize the bulk-loaded state through the semantics-check engine so
  // --jobs / --no-verdict-cache drive the parallel probes over the loaded
  // config (the TSan job runs bulkload with --jobs 4).
  auto result =
      core::Specializer(service, specializerOptions(opts)).specialize();
  std::printf("  specialization verdicts: %zu changes, %zu solver queries, "
              "%zu timeouts\n",
              result.stats.totalChanges(), result.stats.solverQueries,
              result.stats.solverTimeouts);
  return 0;
}

int cmdIfc(const p4::CheckedProgram& checked, const Options& opts) {
  if (opts.policyFile.empty()) argError("ifc needs --policy FILE");
  ifc::IfcPolicy policy = loadPolicy(opts.policyFile, checked);

  core::FlayOptions foptions;
  foptions.analysis.analyzeParser = !opts.skipParser;
  core::FlayService service(checked, foptions);
  core::CheckEngineOptions eopts;
  eopts.jobs = opts.jobs;
  eopts.useVerdictCache = opts.verdictCache;
  eopts.incrementalSat = opts.incrementalSat;
  service.checkEngine().configure(eopts);
  applyCannedConfig(service, opts.config);

  auto engine = std::make_shared<ifc::IfcEngine>(service, policy);
  service.attachAnalysis(engine);
  ifc::IfcReport report = engine->recheck();
  std::printf("ifc: %zu label(s), %zu sink(s), %zu declassification(s)\n",
              policy.labels.size(), policy.sinks.size(),
              policy.declassify.size());
  std::printf("initial %s", report.render().c_str());

  // Replay a fuzzed update stream (optionally filtered to --replay-updates
  // indices); after every applied update the attached engine has already
  // re-verdicted incrementally, and a from-scratch engine over the same
  // state must agree byte-for-byte.
  std::vector<runtime::Update> script =
      net::fuzzUpdateSequence(checked, opts.updates, opts.seed);
  size_t applied = 0, rejected = 0;
  std::string lastRender = report.render();
  for (size_t i = 0; i < script.size(); ++i) {
    if (opts.replayUpdatesSet &&
        std::find(opts.replayUpdates.begin(), opts.replayUpdates.end(), i) ==
            opts.replayUpdates.end()) {
      continue;
    }
    try {
      service.applyUpdate(script[i]);
    } catch (const std::invalid_argument&) {
      ++rejected;  // same contract as a sequential replay: count, move on
      continue;
    }
    ++applied;
    const ifc::IfcReport& inc = engine->lastReport();
    ifc::IfcReport scratch = engine->recheckFromScratch();
    if (scratch.render() != inc.render()) {
      std::fprintf(stderr,
                   "ifc: INCREMENTAL DRIFT after update %zu\n"
                   "--- incremental ---\n%s--- from-scratch ---\n%s"
                   "reproduce: flayc ifc %s --policy %s --updates %zu "
                   "--seed %llu\n",
                   i, inc.render().c_str(), scratch.render().c_str(),
                   opts.file.c_str(), opts.policyFile.c_str(), opts.updates,
                   static_cast<unsigned long long>(opts.seed));
      return 1;
    }
    std::string render = inc.render();
    if (render != lastRender) {
      std::printf("after update %zu: %zu violation(s)\n", i,
                  inc.violations());
      lastRender = std::move(render);
    }
  }

  std::printf("final %s", engine->lastReport().render().c_str());
  std::printf("ifc: %zu update(s) applied (%zu rejected), "
              "incremental-vs-scratch: consistent\n",
              applied, rejected);
  return 0;
}

int cmdDifftest(const p4::CheckedProgram& checked, const Options& opts) {
  oracle::OracleOptions ooptions;
  ooptions.updates = opts.updates;
  ooptions.packets = opts.packets;
  ooptions.seed = opts.seed;
  ooptions.shrink = opts.shrink;
  ooptions.flayOptions.analysis.analyzeParser = !opts.skipParser;
  if (opts.replayUpdatesSet) ooptions.replayUpdates = opts.replayUpdates;
  ooptions.probePacketOverride = opts.packetHex;
  ooptions.probeIngressPort = opts.ingressPort;
  ooptions.specializerOptions = specializerOptions(opts);
  if (opts.sabotage == "drop-entry") {
    ooptions.sabotage = oracle::OracleOptions::Sabotage::kDropMigratedEntry;
  } else if (!opts.sabotage.empty()) {
    std::fprintf(stderr, "unknown --sabotage '%s' (try drop-entry)\n",
                 opts.sabotage.c_str());
    return 2;
  }
  if (!opts.faultPlan.empty()) {
    ooptions.faultPlan = parseFaultPlan(opts.faultPlan);
  }

  oracle::DifferentialOracle diff(checked, ooptions, opts.file);
  oracle::OracleReport report = diff.run();

  std::printf("difftest: %zu/%zu updates applied (%zu rejected), "
              "%zu packets compared\n",
              report.updatesApplied, diff.script().size(),
              report.updatesRejected, report.packetsCompared);
  std::printf("  semantics-preserving checks: %zu\n", report.preservingChecks);
  std::printf("  full respecializations:      %zu\n",
              report.respecializations);
  if (ooptions.faultPlan.has_value()) {
    std::printf("  fault plan '%s': %zu retries, %zu degraded probe step(s)\n",
                ooptions.faultPlan->toString().c_str(), report.faultRetries,
                report.degradedSteps);
  }
  // --ifc-policy rider: replay the oracle's script on a side service with
  // an attached IFC engine, cross-checking incremental vs from-scratch
  // verdicts after every applied update.
  int ifcRc = 0;
  if (!opts.ifcPolicyFile.empty()) {
    core::FlayOptions sideOptions;
    sideOptions.analysis.analyzeParser = !opts.skipParser;
    core::FlayService side(checked, sideOptions);
    core::CheckEngineOptions eopts;
    eopts.jobs = opts.jobs;
    eopts.useVerdictCache = opts.verdictCache;
    eopts.incrementalSat = opts.incrementalSat;
    side.checkEngine().configure(eopts);
    auto engine = std::make_shared<ifc::IfcEngine>(
        side, loadPolicy(opts.ifcPolicyFile, checked));
    side.attachAnalysis(engine);
    engine->recheck();
    size_t checks = 0;
    for (const auto& u : diff.script()) {
      try {
        side.applyUpdate(u);
      } catch (const std::invalid_argument&) {
        continue;  // rejected by the replay contract: state unchanged
      }
      ++checks;
      if (engine->recheckFromScratch().render() !=
          engine->lastReport().render()) {
        std::fprintf(stderr,
                     "difftest: IFC INCREMENTAL DRIFT after %zu update(s)\n",
                     checks);
        ifcRc = 1;
        break;
      }
    }
    if (ifcRc == 0) {
      std::printf("  ifc cross-check: %zu update(s), %zu violation(s), "
                  "incremental-vs-scratch: consistent\n",
                  checks, engine->lastReport().violations());
    }
  }

  if (report.equivalent) {
    std::printf("  equivalent: original and specialized programs agree\n");
    return ifcRc;
  }

  std::fprintf(stderr, "difftest: NOT EQUIVALENT\n%s\n",
               report.divergence->describe().c_str());
  if (!report.shrunkUpdates.empty() || !report.shrunkPacketBytes.empty()) {
    std::fprintf(stderr, "shrunk to %zu update(s)%s\n",
                 report.shrunkUpdates.size(),
                 report.shrunkPacketBytes.empty()
                     ? ""
                     : " and a fixed probe packet");
  }
  std::fprintf(stderr, "reproduce: %s\n", report.reproCommand.c_str());
  return 1;
}

/// Removes journal/checkpoint files this tool creates in `dir` (and nothing
/// else — a user-supplied --state-dir may contain unrelated files).
void clearStateDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  while (dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name == "journal.jsonl" || name.rfind("checkpoint-", 0) == 0) {
      ::unlink((dir + "/" + name).c_str());
    }
  }
  ::closedir(d);
}

int cmdCrashtest(const p4::CheckedProgram& checked, const Options& opts) {
  std::string dir = opts.stateDir;
  const bool ownDir = dir.empty();
  if (ownDir) dir = "flayc-crashtest-" + std::to_string(::getpid());

  ctrl::ControllerOptions copts;
  copts.stateDir = dir;
  copts.checkpointEvery = opts.checkpointEvery;
  copts.flay.analysis.analyzeParser = !opts.skipParser;
  copts.specializer = specializerOptions(opts);

  std::vector<runtime::Update> script =
      net::fuzzUpdateSequence(checked, opts.updates, opts.seed);

  // An update the engine rejects (e.g. a subset-replay artifact) leaves the
  // transaction aborted and the state unchanged on both sides of a crash.
  auto applyOne = [](ctrl::FaultTolerantController& ctl,
                     const runtime::Update& u) {
    try {
      ctl.apply(u);
    } catch (const std::invalid_argument&) {
    }
  };

  // Reference pass: one uninterrupted run, recording the state digest after
  // every transaction. reference[k] = digest with the first k updates applied.
  clearStateDir(dir);
  std::vector<std::string> reference;
  reference.reserve(script.size() + 1);
  {
    ctrl::FaultTolerantController ref(checked, nullptr, copts);
    reference.push_back(ref.stateDigest());
    for (const auto& u : script) {
      applyOne(ref, u);
      reference.push_back(ref.stateDigest());
    }
  }

  std::mt19937_64 rng(opts.seed ^ 0xC7A57ull);
  size_t mismatches = 0;
  uint64_t replayedTotal = 0;
  for (size_t point = 0; point < opts.killPoints; ++point) {
    size_t k = script.empty() ? 0 : 1 + rng() % script.size();
    clearStateDir(dir);
    {
      ctrl::FaultTolerantController run(checked, nullptr, copts);
      for (size_t j = 0; j < k; ++j) applyOne(run, script[j]);
      // The controller is dropped here with no shutdown work — the moral
      // equivalent of SIGKILL. Durability must come entirely from the
      // per-record journal fsyncs and any checkpoints already on disk.
    }
    if (opts.tornTail) {
      // Simulate a write cut mid-record by the crash: recovery must treat
      // the torn tail as never-happened, not refuse to start.
      std::FILE* f = std::fopen((dir + "/journal.jsonl").c_str(), "ab");
      if (f != nullptr) {
        std::fputs("{\"seq\":999999,\"type\":\"upd", f);
        std::fclose(f);
      }
    }
    ctrl::FaultTolerantController recovered(checked, nullptr, copts);
    replayedTotal += recovered.replayedUpdates();
    if (recovered.stateDigest() != reference[k]) {
      ++mismatches;
      std::fprintf(stderr,
                   "crashtest: MISMATCH after kill at update %zu: recovered "
                   "state differs from the uninterrupted run\n",
                   k);
      continue;
    }
    // A recovered controller must also accept the rest of the script
    // identically — recovery may not corrupt the id allocators or the
    // incremental analysis state it resumes from.
    for (size_t j = k; j < script.size(); ++j) applyOne(recovered, script[j]);
    if (recovered.stateDigest() != reference.back()) {
      ++mismatches;
      std::fprintf(stderr,
                   "crashtest: MISMATCH finishing the script after recovery "
                   "at update %zu\n",
                   k);
    }
  }
  if (ownDir) {
    clearStateDir(dir);
    ::rmdir(dir.c_str());
  }

  std::printf("crashtest: %zu kill point(s) over %zu updates "
              "(checkpoint every %zu, %s tail), %llu updates replayed from "
              "the journal in total\n",
              opts.killPoints, script.size(), opts.checkpointEvery,
              opts.tornTail ? "torn" : "clean",
              static_cast<unsigned long long>(replayedTotal));
  if (mismatches != 0) {
    std::fprintf(stderr, "crashtest: FAILED — %zu mismatch(es)\n", mismatches);
    return 1;
  }
  std::printf("  recovered state digest matched the uninterrupted run at "
              "every kill point\n");
  return 0;
}

int cmdFleet(const p4::CheckedProgram& checked, const Options& opts) {
  fleet::FleetOptions fopts;
  fopts.devices = opts.devices;
  fopts.jobs = opts.jobs;
  fopts.queueCapacity = opts.queueCap;
  fopts.sharedVerdictCache = opts.sharedCache;
  fopts.stateDirRoot = opts.stateDir;
  if (!opts.faultPlan.empty()) fopts.faultPlan = parseFaultPlan(opts.faultPlan);
  fopts.controller.checkpointEvery = opts.checkpointEvery;
  fopts.controller.seed = opts.seed;
  fopts.controller.flay.analysis.analyzeParser = !opts.skipParser;
  // --jobs means fleet-level concurrency here; each device's own
  // semantics-check engine stays single-threaded so N draining devices
  // don't oversubscribe the machine N*jobs ways.
  fopts.controller.specializer.useVerdictCache = opts.verdictCache;
  fopts.controller.specializer.incrementalSat = opts.incrementalSat;
  fopts.controller.specializer.jobs = 1;
  fopts.deviceCompiler.searchIterations = opts.iterations;
  fopts.transport = opts.transport == "socket" ? fleet::Transport::kSocket
                                               : fleet::Transport::kInproc;

  std::vector<runtime::Update> script =
      net::fuzzUpdateSequence(checked, opts.updates, opts.seed);

  Stopwatch bringUp;
  fleet::FleetController fc(checked, fopts);
  double bringUpSecs = bringUp.elapsedSeconds();
  Stopwatch drainTimer;
  for (const auto& u : script) fc.broadcast(u);
  fc.drain();
  double drainSecs = drainTimer.elapsedSeconds();
  std::printf("fleet: %zu device(s), %zu update(s) broadcast, jobs=%zu, "
              "shared-cache=%s, transport=%s\n",
              fc.deviceCount(), script.size(), opts.jobs,
              opts.sharedCache ? "on" : "off", opts.transport.c_str());
  uint64_t applied = 0, rejected = 0, dropped = 0;
  for (size_t i = 0; i < fc.deviceCount(); ++i) {
    fleet::DeviceStatus s = fc.status(i);
    applied += s.applied;
    rejected += s.rejected;
    dropped += s.dropped;
    std::printf("  %s: applied=%llu rejected=%llu dropped=%llu retries=%llu "
                "replayed=%llu%s%s\n",
                s.name.c_str(), static_cast<unsigned long long>(s.applied),
                static_cast<unsigned long long>(s.rejected),
                static_cast<unsigned long long>(s.dropped),
                static_cast<unsigned long long>(s.retries),
                static_cast<unsigned long long>(s.replayed),
                s.degraded ? " DEGRADED" : "", s.failed ? " FAILED" : "");
  }
  std::printf("  aggregate: %llu applied, %llu rejected, %llu dropped; "
              "%zu degraded, %zu failed\n",
              static_cast<unsigned long long>(applied),
              static_cast<unsigned long long>(rejected),
              static_cast<unsigned long long>(dropped), fc.degradedDevices(),
              fc.failedDevices());
  std::printf("  throughput: %.1f updates/s (bring-up %.2f s, drain %.2f s)\n",
              drainSecs > 0 ? applied / drainSecs : 0.0, bringUpSecs,
              drainSecs);

  if (fc.failedDevices() != 0) {
    std::fprintf(stderr, "fleet: FAILED — %zu device(s) quarantined\n",
                 fc.failedDevices());
    return 1;
  }
  if (dropped != 0) {
    // A capped queue legitimately drops updates, so the devices saw
    // different streams; equal digests are no longer an invariant.
    std::printf("  state digests: not compared (%llu update(s) dropped)\n",
                static_cast<unsigned long long>(dropped));
    return 0;
  }
  // Every device received the identical stream, so every device must end in
  // the identical committed state — regardless of its fault plan.
  std::string first = fc.stateDigest(0);
  for (size_t i = 1; i < fc.deviceCount(); ++i) {
    if (fc.stateDigest(i) != first) {
      std::fprintf(stderr,
                   "fleet: DIVERGENCE — %s digest %s != %s digest %s\n",
                   fc.deviceName(i).c_str(), fc.stateDigest(i).c_str(),
                   fc.deviceName(0).c_str(), first.c_str());
      return 1;
    }
  }
  std::printf("  state digests: all %zu device(s) identical (%s), fleet %s\n",
              fc.deviceCount(), first.c_str(), fc.fleetDigest().c_str());
  return 0;
}

int cmdReplay(const p4::CheckedProgram& checked, const Options& opts) {
  replay::ReplayOptions ropts;
  ropts.devices = opts.devices;
  // The fuzz default of 32 packets is far too short to observe churn;
  // replay's own default only applies when --packets was not given.
  ropts.packets = opts.packetsSet ? opts.packets : 20000;
  ropts.updates = opts.updates;
  ropts.churnRate = opts.churnRate;
  ropts.jobs = opts.jobs;
  ropts.queueCapacity = opts.queueCap;
  ropts.seed = opts.seed;
  ropts.windowPackets = opts.window;
  ropts.mix = *net::parseMix(opts.mix);  // validated at arg-parse time
  if (!opts.faultPlan.empty()) ropts.faultPlan = parseFaultPlan(opts.faultPlan);
  ropts.controller.flay.analysis.analyzeParser = !opts.skipParser;
  ropts.controller.specializer = specializerOptions(opts);
  ropts.controller.specializer.jobs = 1;  // same rationale as cmdFleet
  ropts.controller.seed = opts.seed;
  ropts.deviceCompiler.searchIterations = opts.iterations;
  ropts.transport = opts.transport == "socket" ? fleet::Transport::kSocket
                                               : fleet::Transport::kInproc;

  replay::LiveReplayHarness harness(checked, ropts);
  replay::ReplayReport report = harness.run();
  std::printf("%s", replay::describeReport(report).c_str());
  if (!report.ok) {
    std::fprintf(stderr, "replay: FAILED — %zu gate violation(s)\n",
                 report.gateFailures.size());
    return 1;
  }
  std::printf("  all gates passed\n");
  return 0;
}

// `flayc agent prog.p4l --connect PATH` — one device agent process: builds
// a FaultTolerantController over a SimulatedDevice and serves the wire
// protocol until the daemon says bye (or the connection drops).
int cmdAgent(const p4::CheckedProgram& checked, const Options& opts) {
  if (opts.connectPath.empty()) argError("agent needs --connect PATH");

  ctrl::ControllerOptions copts;
  copts.checkpointEvery = opts.checkpointEvery;
  copts.seed = opts.seed;
  copts.flay.analysis.analyzeParser = !opts.skipParser;
  copts.specializer = specializerOptions(opts);
  copts.specializer.jobs = 1;  // same rationale as cmdFleet
  if (!opts.stateDir.empty()) copts.stateDir = opts.stateDir;

  ctrl::FaultPlan plan;
  if (!opts.faultPlan.empty()) plan = parseFaultPlan(opts.faultPlan);
  tofino::CompilerOptions compilerOpts;
  compilerOpts.searchIterations = opts.iterations;
  ctrl::SimulatedDevice device(plan, tofino::PipelineModel{},
                                     compilerOpts);
  ctrl::FaultTolerantController ctl(checked, &device, copts);

  wire::Fd fd = wire::connectUnix(opts.connectPath);
  fleet::AgentEndpoint endpoint(checked, ctl, wire::FrameChannel(std::move(fd)),
                                opts.deviceName, opts.seed);
  bool ok = endpoint.serve();
  const fleet::AgentStats& st = endpoint.stats();
  std::printf("agent %s: batches=%llu applied=%llu rejected=%llu "
              "retries=%llu bulkloads=%llu%s%s\n",
              opts.deviceName.c_str(),
              static_cast<unsigned long long>(st.batches),
              static_cast<unsigned long long>(st.applied),
              static_cast<unsigned long long>(st.rejected),
              static_cast<unsigned long long>(st.retries),
              static_cast<unsigned long long>(st.bulkLoads),
              ok ? "" : " FAILED", ctl.degraded() ? " DEGRADED" : "");
  if (!ok && !endpoint.lastError().empty()) {
    std::fprintf(stderr, "agent %s: %s\n", opts.deviceName.c_str(),
                 endpoint.lastError().c_str());
  }
  return ok ? 0 : 1;
}

// `flayc daemon prog.p4l --listen PATH [--spawn]` — the controller daemon:
// accepts --devices agent connections (optionally forking+exec'ing them
// itself), shards by program fingerprint at handshake, then drives the
// fuzzed update script down every accepted link concurrently and checks
// the replicated digests for divergence.
int cmdDaemon(const p4::CheckedProgram& checked, const Options& opts) {
  if (opts.listenPath.empty()) argError("daemon needs --listen PATH");

  wire::Fd listener = wire::listenUnix(opts.listenPath);
  std::string fingerprint = fleet::programFingerprint(checked);

  std::vector<pid_t> children;
  if (opts.spawnAgents) {
    for (size_t i = 0; i < opts.devices; ++i) {
      std::string device = "dev" + std::to_string(i);
      std::string seed = std::to_string(opts.seed + i);
      pid_t pid = fork();
      if (pid < 0) {
        std::fprintf(stderr, "daemon: fork failed: %s\n",
                     std::strerror(errno));
        return 1;
      }
      if (pid == 0) {
        execl(opts.argv0.c_str(), opts.argv0.c_str(), "agent",
              opts.file.c_str(), "--connect", opts.listenPath.c_str(),
              "--device", device.c_str(), "--seed", seed.c_str(),
              static_cast<char*>(nullptr));
        std::fprintf(stderr, "daemon: exec %s failed: %s\n",
                     opts.argv0.c_str(), std::strerror(errno));
        _Exit(127);
      }
      children.push_back(pid);
    }
  }

  std::vector<std::unique_ptr<fleet::AgentLink>> links;
  for (size_t i = 0; i < opts.devices; ++i) {
    wire::Fd conn = wire::acceptOne(listener);
    auto link = std::make_unique<fleet::AgentLink>(
        std::move(conn), "conn" + std::to_string(i));
    wire::Hello hello = link->handshake();
    if (hello.programFingerprint != fingerprint) {
      // Shard-by-program: this daemon only drives agents running the same
      // checked program; anything else is turned away at the door.
      link->reject("program fingerprint mismatch (daemon " + fingerprint +
                   ", agent " + hello.programFingerprint + ")");
      std::fprintf(stderr, "daemon: rejected %s (fingerprint mismatch)\n",
                   hello.deviceName.c_str());
      --i;  // the slot is still open
      continue;
    }
    link->accept();
    std::printf("daemon: accepted %s\n", hello.deviceName.c_str());
    links.push_back(std::move(link));
  }
  listener.reset();

  std::vector<runtime::Update> script =
      net::fuzzUpdateSequence(checked, opts.updates, opts.seed);
  std::vector<std::string> texts;
  texts.reserve(script.size());
  for (const auto& u : script) texts.push_back(u.toString());

  Stopwatch drainTimer;
  std::atomic<uint64_t> applied{0}, rejected{0};
  std::atomic<size_t> failures{0};
  std::vector<std::thread> drivers;
  drivers.reserve(links.size());
  for (auto& linkPtr : links) {
    drivers.emplace_back([&, link = linkPtr.get()] {
      try {
        for (const auto& t : texts) link->enqueue(t);
        fleet::AgentLink::FlushDelta d = link->flush();
        applied += d.applied;
        rejected += d.rejected;
      } catch (const wire::WireError& e) {
        std::fprintf(stderr, "daemon: %s died: %s\n", link->label().c_str(),
                     e.what());
        ++failures;
      }
    });
  }
  for (auto& t : drivers) t.join();
  double drainSecs = drainTimer.elapsedSeconds();

  std::string firstDigest;
  bool diverged = false;
  for (auto& link : links) {
    if (!link->alive()) continue;
    try {
      wire::DigestReply reply = link->digest();
      if (firstDigest.empty()) {
        firstDigest = reply.digest;
      } else if (reply.digest != firstDigest) {
        std::fprintf(stderr, "daemon: DIVERGENCE — %s digest %s != %s\n",
                     link->label().c_str(), reply.digest.c_str(),
                     firstDigest.c_str());
        diverged = true;
      }
    } catch (const wire::WireError& e) {
      std::fprintf(stderr, "daemon: digest from %s failed: %s\n",
                   link->label().c_str(), e.what());
      ++failures;
    }
  }
  for (auto& link : links) link->bye();

  size_t childFailures = 0;
  for (pid_t pid : children) {
    int status = 0;
    if (waitpid(pid, &status, 0) < 0 || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      ++childFailures;
    }
  }
  unlink(opts.listenPath.c_str());

  std::printf("daemon: %zu agent(s), %zu update(s) each; applied=%llu "
              "rejected=%llu in %.2f s%s\n",
              links.size(), texts.size(),
              static_cast<unsigned long long>(applied.load()),
              static_cast<unsigned long long>(rejected.load()), drainSecs,
              firstDigest.empty()
                  ? ""
                  : ("; digest " + firstDigest).c_str());
  if (failures != 0 || childFailures != 0 || diverged) {
    std::fprintf(stderr,
                 "daemon: FAILED — %zu link failure(s), %zu agent exit "
                 "failure(s)%s\n",
                 failures.load(), childFailures,
                 diverged ? ", digests diverged" : "");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  opts.argv0 = argv[0];
  // Strict parsing: a flag missing its value or an unknown flag is a
  // one-line diagnostic and exit 2 — never silently absorbed as a
  // positional argument.
  auto value = [&](int* i, const std::string& flag) -> std::string {
    if (*i + 1 >= argc) argError("missing value for " + flag);
    return argv[++*i];
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--skip-parser") {
      opts.skipParser = true;
    } else if (arg == "--iterations") {
      opts.iterations =
          static_cast<uint32_t>(parseNumber(value(&i, arg), "--iterations"));
    } else if (arg == "--config") {
      opts.config = value(&i, arg);
    } else if (arg == "--updates") {
      opts.updates = parseNumber(value(&i, arg), "--updates");
    } else if (arg == "--seed") {
      opts.seed = parseNumber(value(&i, arg), "--seed");
    } else if (arg == "--packets") {
      opts.packets = parseNumber(value(&i, arg), "--packets");
      opts.packetsSet = true;
    } else if (arg == "--mix") {
      opts.mix = value(&i, arg);
      if (!net::parseMix(opts.mix)) {
        argError("unknown --mix '" + opts.mix +
                 "' (uniform, heavy-hitter, port-scan, tunnel)");
      }
    } else if (arg == "--churn-rate") {
      std::string v = value(&i, arg);
      char* end = nullptr;
      opts.churnRate = std::strtod(v.c_str(), &end);
      if (v.empty() || end == nullptr || *end != '\0' || opts.churnRate < 0 ||
          opts.churnRate != opts.churnRate) {
        argError("bad number '" + v + "' for --churn-rate");
      }
    } else if (arg == "--window") {
      opts.window = parseNumber(value(&i, arg), "--window");
      if (opts.window == 0) argError("--window needs at least 1");
    } else if (arg == "--shrink") {
      opts.shrink = true;
    } else if (arg == "--no-shrink") {
      opts.shrink = false;
    } else if (arg == "--replay-updates") {
      opts.replayUpdatesSet = true;
      opts.replayUpdates = parseIndexList(value(&i, arg));
    } else if (arg == "--packet-hex") {
      opts.packetHex = parseHexBytes(value(&i, arg));
    } else if (arg == "--ingress-port") {
      opts.ingressPort =
          static_cast<uint32_t>(parseNumber(value(&i, arg), "--ingress-port"));
    } else if (arg == "--sabotage") {
      opts.sabotage = value(&i, arg);
    } else if (arg == "--fault-plan") {
      opts.faultPlan = value(&i, arg);
    } else if (arg == "--jobs") {
      opts.jobs = parseNumber(value(&i, arg), "--jobs");
      if (opts.jobs == 0) argError("--jobs needs at least 1");
    } else if (arg == "--no-verdict-cache") {
      opts.verdictCache = false;
    } else if (arg == "--no-incremental-sat") {
      opts.incrementalSat = false;
    } else if (arg == "--kill-points") {
      opts.killPoints = parseNumber(value(&i, arg), "--kill-points");
    } else if (arg == "--checkpoint-every") {
      opts.checkpointEvery =
          parseNumber(value(&i, arg), "--checkpoint-every");
    } else if (arg == "--state-dir") {
      opts.stateDir = value(&i, arg);
    } else if (arg == "--devices") {
      opts.devices = parseNumber(value(&i, arg), "--devices");
      if (opts.devices == 0) argError("--devices needs at least 1");
    } else if (arg == "--queue-cap") {
      opts.queueCap = parseNumber(value(&i, arg), "--queue-cap");
    } else if (arg == "--no-shared-cache") {
      opts.sharedCache = false;
    } else if (arg == "--transport") {
      opts.transport = value(&i, arg);
      if (opts.transport != "inproc" && opts.transport != "socket") {
        argError("unknown --transport '" + opts.transport +
                 "' (inproc, socket)");
      }
    } else if (arg == "--listen") {
      opts.listenPath = value(&i, arg);
    } else if (arg == "--connect") {
      opts.connectPath = value(&i, arg);
    } else if (arg == "--device") {
      opts.deviceName = value(&i, arg);
      if (opts.deviceName.empty()) argError("--device needs a name");
    } else if (arg == "--spawn") {
      opts.spawnAgents = true;
    } else if (arg == "--policy") {
      opts.policyFile = value(&i, arg);
    } else if (arg == "--ifc-policy") {
      opts.ifcPolicyFile = value(&i, arg);
    } else if (arg == "--torn-tail") {
      opts.tornTail = true;
    } else if (arg == "--stats") {
      opts.stats = true;
    } else if (arg == "--stats=json") {
      opts.stats = true;
      opts.statsJson = true;
    } else if (arg == "--bulk") {
      opts.bulk = true;
    } else if (arg == "--chunk") {
      opts.chunk = parseNumber(value(&i, arg), "--chunk");
      if (opts.chunk == 0) argError("--chunk needs at least 1");
    } else if (arg == "--trace-out") {
      opts.traceOut = value(&i, arg);
    } else if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
      argError("unknown flag '" + arg + "'");
    } else if (opts.command.empty()) {
      opts.command = arg;
    } else if (opts.file.empty()) {
      opts.file = arg;
    } else {
      argError("unexpected argument '" + arg + "'");
    }
  }
  if (opts.command.empty() || opts.file.empty()) return usage();

  if (!opts.traceOut.empty() &&
      !obs::Registry::global().openTrace(opts.traceOut)) {
    std::fprintf(stderr, "cannot open trace file '%s'\n",
                 opts.traceOut.c_str());
    return 1;
  }

  int rc;
  try {
    p4::CheckedProgram checked = p4::loadProgramFromFile(opts.file);
    if (opts.command == "check") {
      rc = cmdCheck(checked);
    } else if (opts.command == "print") {
      std::printf("%s", p4::printProgram(checked.program).c_str());
      rc = 0;
    } else if (opts.command == "analyze") {
      rc = cmdAnalyze(checked, opts);
    } else if (opts.command == "compile") {
      rc = cmdCompile(checked, opts);
    } else if (opts.command == "specialize") {
      rc = cmdSpecialize(checked, opts);
    } else if (opts.command == "fuzz") {
      rc = cmdFuzz(checked, opts);
    } else if (opts.command == "bulkload") {
      rc = cmdBulkload(checked, opts);
    } else if (opts.command == "difftest") {
      rc = cmdDifftest(checked, opts);
    } else if (opts.command == "ifc") {
      rc = cmdIfc(checked, opts);
    } else if (opts.command == "crashtest") {
      rc = cmdCrashtest(checked, opts);
    } else if (opts.command == "fleet") {
      rc = cmdFleet(checked, opts);
    } else if (opts.command == "replay") {
      rc = cmdReplay(checked, opts);
    } else if (opts.command == "daemon") {
      rc = cmdDaemon(checked, opts);
    } else if (opts.command == "agent") {
      rc = cmdAgent(checked, opts);
    } else {
      return usage();
    }
  } catch (const flay::CompileError& e) {
    std::fprintf(stderr, "error:\n%s\n", e.what());
    obs::Registry::global().closeTrace();
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    obs::Registry::global().closeTrace();
    return 1;
  }

  if (opts.stats) {
    if (opts.statsJson) {
      std::printf("%s\n", obs::Registry::global().toJson().c_str());
    } else {
      std::printf("%s", obs::Registry::global().snapshot().toText().c_str());
    }
  }
  obs::Registry::global().closeTrace();
  return rc;
}
